#include "core/kernel_serdes.h"

#include <cstdio>
#include <cstdlib>

#include "runtime/plan.h"
#include "support/error.h"
#include "support/format.h"

namespace sw::core {

namespace {

// --- token stream -------------------------------------------------------
// Tokens are separated by single spaces.  Integers are decimal; strings are
// length-prefixed ("<len>:<raw bytes>") so sources and tree dumps embed
// verbatim; doubles render with %.17g (round-trip exact for IEEE doubles).

class Writer {
 public:
  void tag(std::string_view t) {
    out_ += t;
    out_ += ' ';
  }
  void num(std::int64_t v) {
    out_ += std::to_string(v);
    out_ += ' ';
  }
  void boolean(bool v) { num(v ? 1 : 0); }
  void real(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    out_ += ' ';
  }
  void str(std::string_view s) {
    out_ += std::to_string(s.size());
    out_ += ':';
    out_.append(s.data(), s.size());
    out_ += ' ';
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  void expectTag(std::string_view t) {
    const std::string_view got = nextToken();
    if (got != t)
      throwCorrupt(strCat("expected tag '", t, "', got '", got, "'"));
  }

  std::int64_t num() {
    const std::string_view t = nextToken();
    errno = 0;
    char* end = nullptr;
    const std::string copy(t);  // strtoll needs a terminator
    const long long v = std::strtoll(copy.c_str(), &end, 10);
    if (end != copy.c_str() + copy.size() || errno == ERANGE)
      throwCorrupt(strCat("bad integer token '", copy, "'"));
    return v;
  }

  bool boolean() {
    const std::int64_t v = num();
    if (v != 0 && v != 1) throwCorrupt(strCat("bad boolean value ", v));
    return v == 1;
  }

  std::string str() {
    skipSpaces();
    const std::size_t colon = text_.find(':', pos_);
    if (colon == std::string::npos)
      throwCorrupt("string token missing length prefix");
    errno = 0;
    char* end = nullptr;
    const std::string lenText = text_.substr(pos_, colon - pos_);
    const long long len = std::strtoll(lenText.c_str(), &end, 10);
    if (end != lenText.c_str() + lenText.size() || len < 0 ||
        errno == ERANGE)
      throwCorrupt(strCat("bad string length '", lenText, "'"));
    pos_ = colon + 1;
    if (pos_ + static_cast<std::size_t>(len) > text_.size())
      throwCorrupt("string token truncated");
    std::string out = text_.substr(pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  [[nodiscard]] bool atEnd() {
    skipSpaces();
    return pos_ >= text_.size();
  }

  [[noreturn]] void throwCorrupt(const std::string& why) const {
    throwInput(strCat("corrupt serialized kernel at byte ", pos_, ": ", why));
  }

 private:
  void skipSpaces() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n'))
      ++pos_;
  }

  std::string_view nextToken() {
    skipSpaces();
    std::size_t end = pos_;
    while (end < text_.size() && text_[end] != ' ' && text_[end] != '\n')
      ++end;
    if (end == pos_) throwCorrupt("unexpected end of stream");
    const std::string_view token(text_.data() + pos_, end - pos_);
    pos_ = end;
    return token;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- field serializers, one writer/reader pair per struct ---------------

void writeAffine(Writer& w, const poly::AffineExpr& e) {
  w.num(e.constantTerm());
  const auto& coeffs = e.coefficients();  // std::map: sorted, stable
  w.num(static_cast<std::int64_t>(coeffs.size()));
  for (const auto& [dim, coeff] : coeffs) {
    w.str(dim);
    w.num(coeff);
  }
  const auto& divs = e.floorDivTerms();
  w.num(static_cast<std::int64_t>(divs.size()));
  for (const poly::FloorDivTerm& d : divs) {
    w.num(d.coeff);
    w.num(d.denominator);
    writeAffine(w, *d.numerator);
  }
}

poly::AffineExpr readAffine(Reader& r) {
  poly::AffineExpr e = poly::AffineExpr::constant(r.num());
  const std::int64_t coeffCount = r.num();
  for (std::int64_t i = 0; i < coeffCount; ++i) {
    const std::string dim = r.str();
    const std::int64_t coeff = r.num();
    e = e + poly::AffineExpr::dim(dim) * coeff;
  }
  const std::int64_t divCount = r.num();
  for (std::int64_t i = 0; i < divCount; ++i) {
    const std::int64_t coeff = r.num();
    const std::int64_t denominator = r.num();
    const poly::AffineExpr numerator = readAffine(r);
    e = e + poly::AffineExpr::floorDiv(numerator, denominator) * coeff;
  }
  return e;
}

void writeExtent(Writer& w, const sched::Extent& e) {
  w.num(e.constantPart());
  w.boolean(e.param().has_value());
  if (e.param().has_value()) {
    w.str(*e.param());
    w.num(e.divisor());
  }
}

sched::Extent readExtent(Reader& r) {
  const std::int64_t constant = r.num();
  if (!r.boolean()) return sched::Extent::constant(constant);
  const std::string param = r.str();
  const std::int64_t divisor = r.num();
  return sched::Extent::paramDiv(param, divisor).plus(constant);
}

void writeBufferRef(Writer& w, const sched::SpmBufferRef& b) {
  w.str(b.set);
  w.boolean(b.phaseVar.has_value());
  if (b.phaseVar.has_value()) w.str(*b.phaseVar);
  w.num(b.phaseOffset);
}

sched::SpmBufferRef readBufferRef(Reader& r) {
  sched::SpmBufferRef b;
  b.set = r.str();
  if (r.boolean()) b.phaseVar = r.str();
  b.phaseOffset = r.num();
  return b;
}

void writeCopyStmt(Writer& w, const sched::CopyStmt& s) {
  w.str(s.name);
  w.num(static_cast<std::int64_t>(s.kind));
  w.str(s.array);
  writeBufferRef(w, s.buffer);
  w.boolean(s.batchIndex.has_value());
  if (s.batchIndex.has_value()) writeAffine(w, *s.batchIndex);
  writeAffine(w, s.rowStart);
  writeAffine(w, s.colStart);
  w.str(s.rowsParam);
  w.str(s.colsParam);
  w.num(s.tileRows);
  w.num(s.tileCols);
  w.boolean(s.senderGuard.has_value());
  if (s.senderGuard.has_value()) {
    w.str(s.senderGuard->meshVar);
    writeAffine(w, s.senderGuard->equals);
  }
  writeBufferRef(w, s.rmaSource);
  w.str(s.replySlot);
  w.boolean(s.clampToBounds);
}

sched::CopyStmt readCopyStmt(Reader& r) {
  sched::CopyStmt s;
  s.name = r.str();
  const std::int64_t kind = r.num();
  if (kind < 0 || kind > static_cast<std::int64_t>(sched::CopyKind::kRmaColBcast))
    r.throwCorrupt(strCat("bad CopyKind ", kind));
  s.kind = static_cast<sched::CopyKind>(kind);
  s.array = r.str();
  s.buffer = readBufferRef(r);
  if (r.boolean()) s.batchIndex = readAffine(r);
  s.rowStart = readAffine(r);
  s.colStart = readAffine(r);
  s.rowsParam = r.str();
  s.colsParam = r.str();
  s.tileRows = r.num();
  s.tileCols = r.num();
  if (r.boolean()) {
    sched::SenderGuard guard;
    guard.meshVar = r.str();
    guard.equals = readAffine(r);
    s.senderGuard = std::move(guard);
  }
  s.rmaSource = readBufferRef(r);
  s.replySlot = r.str();
  s.clampToBounds = r.boolean();
  return s;
}

void writeComputeClamp(Writer& w,
                       const std::optional<sched::ComputeClamp>& clamp) {
  w.boolean(clamp.has_value());
  if (clamp.has_value()) {
    writeAffine(w, clamp->origin);
    w.str(clamp->boundParam);
  }
}

std::optional<sched::ComputeClamp> readComputeClamp(Reader& r) {
  if (!r.boolean()) return std::nullopt;
  sched::ComputeClamp clamp;
  clamp.origin = readAffine(r);
  clamp.boundParam = r.str();
  return clamp;
}

void writeComputeInfo(Writer& w, const sched::ComputeMarkInfo& c) {
  w.num(static_cast<std::int64_t>(c.kind));
  writeBufferRef(w, c.a);
  writeBufferRef(w, c.b);
  writeBufferRef(w, c.c);
  w.num(c.m);
  w.num(c.n);
  w.num(c.k);
  w.num(c.mr);
  w.num(c.nr);
  writeComputeClamp(w, c.clampM);
  writeComputeClamp(w, c.clampN);
  writeComputeClamp(w, c.clampK);
}

sched::ComputeMarkInfo readComputeInfo(Reader& r) {
  sched::ComputeMarkInfo c;
  const std::int64_t kind = r.num();
  if (kind < 0 || kind > 1) r.throwCorrupt(strCat("bad compute kind ", kind));
  c.kind = static_cast<sched::ComputeMarkInfo::Kind>(kind);
  c.a = readBufferRef(r);
  c.b = readBufferRef(r);
  c.c = readBufferRef(r);
  c.m = r.num();
  c.n = r.num();
  c.k = r.num();
  c.mr = static_cast<int>(r.num());
  c.nr = static_cast<int>(r.num());
  c.clampM = readComputeClamp(r);
  c.clampN = readComputeClamp(r);
  c.clampK = readComputeClamp(r);
  return c;
}

void writeElementwiseInfo(Writer& w, const sched::ElementwiseMarkInfo& e) {
  w.num(static_cast<std::int64_t>(e.op));
  writeBufferRef(w, e.target);
  w.num(e.rows);
  w.num(e.cols);
  w.boolean(e.source.has_value());
  if (e.source.has_value()) writeBufferRef(w, *e.source);
  w.str(e.statement);
}

sched::ElementwiseMarkInfo readElementwiseInfo(Reader& r) {
  sched::ElementwiseMarkInfo e;
  const std::int64_t op = r.num();
  if (op < 0 ||
      op > static_cast<std::int64_t>(sched::ElementwiseMarkInfo::Op::kTranspose))
    r.throwCorrupt(strCat("bad elementwise op ", op));
  e.op = static_cast<sched::ElementwiseMarkInfo::Op>(op);
  e.target = readBufferRef(r);
  e.rows = r.num();
  e.cols = r.num();
  if (r.boolean()) e.source = readBufferRef(r);
  e.statement = r.str();
  return e;
}

void writeOps(Writer& w, const codegen::OpList& ops);
codegen::OpList readOps(Reader& r);

void writeOp(Writer& w, const codegen::Op& op) {
  w.num(static_cast<std::int64_t>(op.v.index()));
  if (const auto* loop = std::get_if<codegen::LoopOp>(&op.v)) {
    w.str(loop->var);
    writeExtent(w, loop->begin);
    writeExtent(w, loop->end);
    writeOps(w, loop->body);
  } else if (const auto* assign = std::get_if<codegen::AssignOp>(&op.v)) {
    w.str(assign->var);
    writeExtent(w, assign->value);
    writeOps(w, assign->body);
  } else if (const auto* dma = std::get_if<codegen::DmaOp>(&op.v)) {
    writeCopyStmt(w, dma->stmt);
  } else if (const auto* rma = std::get_if<codegen::RmaOp>(&op.v)) {
    writeCopyStmt(w, rma->stmt);
  } else if (const auto* wait = std::get_if<codegen::WaitOp>(&op.v)) {
    w.str(wait->slot);
    w.boolean(wait->isRma);
    w.boolean(wait->isRowBroadcast);
  } else if (std::get_if<codegen::SyncOp>(&op.v) != nullptr) {
    // no payload
  } else if (const auto* compute = std::get_if<codegen::ComputeOp>(&op.v)) {
    writeComputeInfo(w, compute->info);
  } else if (const auto* ew = std::get_if<codegen::ElementwiseOp>(&op.v)) {
    writeElementwiseInfo(w, ew->info);
  } else {
    SW_UNREACHABLE("unhandled Op variant in serializer");
  }
}

codegen::Op readOp(Reader& r) {
  codegen::Op op;
  const std::int64_t index = r.num();
  switch (index) {
    case 0: {
      codegen::LoopOp loop;
      loop.var = r.str();
      loop.begin = readExtent(r);
      loop.end = readExtent(r);
      loop.body = readOps(r);
      op.v = std::move(loop);
      break;
    }
    case 1: {
      codegen::AssignOp assign;
      assign.var = r.str();
      assign.value = readExtent(r);
      assign.body = readOps(r);
      op.v = std::move(assign);
      break;
    }
    case 2:
      op.v = codegen::DmaOp{readCopyStmt(r)};
      break;
    case 3:
      op.v = codegen::RmaOp{readCopyStmt(r)};
      break;
    case 4: {
      codegen::WaitOp wait;
      wait.slot = r.str();
      wait.isRma = r.boolean();
      wait.isRowBroadcast = r.boolean();
      op.v = std::move(wait);
      break;
    }
    case 5:
      op.v = codegen::SyncOp{};
      break;
    case 6:
      op.v = codegen::ComputeOp{readComputeInfo(r)};
      break;
    case 7:
      op.v = codegen::ElementwiseOp{readElementwiseInfo(r)};
      break;
    default:
      r.throwCorrupt(strCat("bad op tag ", index));
  }
  return op;
}

void writeOps(Writer& w, const codegen::OpList& ops) {
  w.num(static_cast<std::int64_t>(ops.size()));
  for (const codegen::Op& op : ops) writeOp(w, op);
}

codegen::OpList readOps(Reader& r) {
  const std::int64_t count = r.num();
  if (count < 0) r.throwCorrupt(strCat("bad op count ", count));
  codegen::OpList ops;
  ops.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) ops.push_back(readOp(r));
  return ops;
}

void writeOptions(Writer& w, const CodegenOptions& o) {
  w.boolean(o.useAsm);
  w.boolean(o.useRma);
  w.boolean(o.hideLatency);
  w.boolean(o.batched);
  w.num(static_cast<std::int64_t>(o.fusion));
  w.boolean(o.transposeA);
  w.boolean(o.transposeB);
  w.num(o.tileM);
  w.num(o.tileN);
  w.num(o.tileK);
  w.num(o.stripFactor);
  w.num(o.microMr);
  w.num(o.microNr);
  w.boolean(o.edgeTiles);
}

CodegenOptions readOptions(Reader& r) {
  CodegenOptions o;
  o.useAsm = r.boolean();
  o.useRma = r.boolean();
  o.hideLatency = r.boolean();
  o.batched = r.boolean();
  const std::int64_t fusion = r.num();
  if (fusion < 0 || fusion > static_cast<std::int64_t>(FusionKind::kEpilogueRelu))
    r.throwCorrupt(strCat("bad fusion kind ", fusion));
  o.fusion = static_cast<FusionKind>(fusion);
  o.transposeA = r.boolean();
  o.transposeB = r.boolean();
  o.tileM = r.num();
  o.tileN = r.num();
  o.tileK = r.num();
  o.stripFactor = r.num();
  o.microMr = static_cast<int>(r.num());
  o.microNr = static_cast<int>(r.num());
  o.edgeTiles = r.boolean();
  return o;
}

void writeProgram(Writer& w, const codegen::KernelProgram& p) {
  w.str(p.name);
  w.num(static_cast<std::int64_t>(p.params.size()));
  for (const std::string& param : p.params) w.str(param);
  w.num(static_cast<std::int64_t>(p.arrays.size()));
  for (const codegen::ArrayInfo& a : p.arrays) {
    w.str(a.name);
    w.str(a.batchParam);
    w.str(a.rowsParam);
    w.str(a.colsParam);
  }
  w.num(static_cast<std::int64_t>(p.buffers.size()));
  for (const codegen::SpmBufferDecl& b : p.buffers) {
    w.str(b.set);
    w.num(b.rows);
    w.num(b.cols);
    w.num(b.phases);
    w.num(b.spmOffsetBytes);
  }
  writeOps(w, p.body);
}

codegen::KernelProgram readProgram(Reader& r) {
  codegen::KernelProgram p;
  p.name = r.str();
  const std::int64_t paramCount = r.num();
  for (std::int64_t i = 0; i < paramCount; ++i) p.params.push_back(r.str());
  const std::int64_t arrayCount = r.num();
  for (std::int64_t i = 0; i < arrayCount; ++i) {
    codegen::ArrayInfo a;
    a.name = r.str();
    a.batchParam = r.str();
    a.rowsParam = r.str();
    a.colsParam = r.str();
    p.arrays.push_back(std::move(a));
  }
  const std::int64_t bufferCount = r.num();
  for (std::int64_t i = 0; i < bufferCount; ++i) {
    codegen::SpmBufferDecl b;
    b.set = r.str();
    b.rows = r.num();
    b.cols = r.num();
    b.phases = static_cast<int>(r.num());
    b.spmOffsetBytes = r.num();
    p.buffers.push_back(std::move(b));
  }
  p.body = readOps(r);
  return p;
}

}  // namespace

std::string serializeCompiledKernel(const CompiledKernel& kernel) {
  Writer w;
  w.tag("swkernel");
  w.num(kKernelSerdesVersion);
  writeOptions(w, kernel.options);
  writeProgram(w, kernel.program);
  w.str(kernel.cpeSource);
  w.str(kernel.mpeSource);
  w.str(kernel.initialTreeDump);
  w.str(kernel.tiledTreeDump);
  w.str(kernel.finalTreeDump);
  w.tag("end");
  return w.take();
}

CompiledKernel deserializeCompiledKernel(const std::string& text) {
  Reader r(text);
  r.expectTag("swkernel");
  const std::int64_t version = r.num();
  if (version != kKernelSerdesVersion)
    throwInput(strCat("serialized kernel version ", version,
                      " does not match current version ",
                      kKernelSerdesVersion));
  CompiledKernel kernel;
  kernel.options = readOptions(r);
  kernel.program = readProgram(r);
  kernel.cpeSource = r.str();
  kernel.mpeSource = r.str();
  kernel.initialTreeDump = r.str();
  kernel.tiledTreeDump = r.str();
  kernel.finalTreeDump = r.str();
  r.expectTag("end");
  if (!r.atEnd()) r.throwCorrupt("trailing bytes after kernel");
  // The execution plan is derived state: re-lower instead of serializing.
  kernel.plan = rt::lowerToPlan(kernel.program);
  return kernel;
}

std::string canonicalRequestKey(const CodegenOptions& options,
                                const sunway::ArchConfig& arch) {
  Writer w;
  w.tag("swkey");
  w.num(kKernelSerdesVersion);
  writeOptions(w, options);
  w.num(arch.meshRows);
  w.num(arch.meshCols);
  w.num(arch.spmBytes);
  w.real(arch.cpeFrequencyHz);
  w.real(arch.cpeFlopsPerCycle);
  w.real(arch.asmKernelEfficiency);
  w.real(arch.naiveFlopsPerCycle);
  w.real(arch.elementwiseFlopsPerCycle);
  w.real(arch.ddrBandwidthBytesPerSec);
  w.real(arch.dmaStartupSeconds);
  w.real(arch.dmaStridePenaltySecondsPerRow);
  w.real(arch.rmaBandwidthBytesPerSec);
  w.real(arch.rmaStartupSeconds);
  w.real(arch.syncSeconds);
  w.real(arch.spawnOverheadSeconds);
  w.real(arch.mpeFlopsPerCycle);
  w.real(arch.mpeFrequencyHz);
  w.real(arch.mpeMemBandwidthBytesPerSec);
  w.num(arch.coreGroups);
  w.real(arch.nodeDdrBandwidthBytesPerSec);
  w.real(arch.nocBandwidthBytesPerSec);
  w.real(arch.nocLatencySeconds);
  return w.take();
}

}  // namespace sw::core
