#include "core/sharded_gemm.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace sw::core {

namespace {

struct Range {
  std::int64_t begin = 0;
  std::int64_t extent = 0;
};

/// Split `extent` into `parts` contiguous ranges whose sizes differ by at
/// most one (the first `extent % parts` ranges get the extra element).
std::vector<Range> evenSplit(std::int64_t extent, int parts) {
  std::vector<Range> ranges;
  ranges.reserve(static_cast<std::size_t>(parts));
  const std::int64_t base = extent / parts;
  const std::int64_t extra = extent % parts;
  std::int64_t begin = 0;
  for (int i = 0; i < parts; ++i) {
    const std::int64_t size = base + (i < extra ? 1 : 0);
    ranges.push_back(Range{begin, size});
    begin += size;
  }
  return ranges;
}

/// Copy a [r0, r0+nr) x [c0, c0+nc) sub-block out of every batch element
/// of a batch x rows x cols row-major array.
std::vector<double> gatherBlock(std::span<const double> src,
                                std::int64_t batch, std::int64_t rows,
                                std::int64_t cols, std::int64_t r0,
                                std::int64_t nr, std::int64_t c0,
                                std::int64_t nc) {
  std::vector<double> block(static_cast<std::size_t>(batch * nr * nc));
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t r = 0; r < nr; ++r) {
      const double* from = src.data() + ((b * rows + r0 + r) * cols + c0);
      double* to = block.data() + ((b * nr + r) * nc);
      std::copy(from, from + nc, to);
    }
  return block;
}

void scatterBlock(std::span<double> dst, std::int64_t batch,
                  std::int64_t rows, std::int64_t cols, std::int64_t r0,
                  std::int64_t nr, std::int64_t c0, std::int64_t nc,
                  const std::vector<double>& block) {
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t r = 0; r < nr; ++r) {
      const double* from = block.data() + ((b * nr + r) * nc);
      double* to = dst.data() + ((b * rows + r0 + r) * cols + c0);
      std::copy(from, from + nc, to);
    }
}

/// Operand block for one shard, honouring transposed storage: A is
/// batch x K x M when transposeA, B is batch x N x K when transposeB.
std::vector<double> gatherA(std::span<const double> a,
                            const CodegenOptions& options,
                            const GemmProblem& p, const Shard& s) {
  if (options.transposeA)
    return gatherBlock(a, p.batch, p.k, p.m, s.k0, s.bk, s.m0, s.bm);
  return gatherBlock(a, p.batch, p.m, p.k, s.m0, s.bm, s.k0, s.bk);
}

std::vector<double> gatherB(std::span<const double> b,
                            const CodegenOptions& options,
                            const GemmProblem& p, const Shard& s) {
  if (options.transposeB)
    return gatherBlock(b, p.batch, p.n, p.k, s.n0, s.bn, s.k0, s.bk);
  return gatherBlock(b, p.batch, p.k, p.n, s.k0, s.bk, s.n0, s.bn);
}

/// NoC hand-off cost of one shard: A and B blocks in, the C block out,
/// plus the C block in when the run reads C (an initial gather with
/// beta != 0, or the previous partial of a chained K chunk).  Groups == 1
/// never crosses the NoC and is charged nothing — a one-group shard must
/// cost exactly the single-group estimate.
double shardCommSeconds(const sunway::ArchConfig& arch, int groups,
                        const GemmProblem& p, const Shard& s) {
  if (groups <= 1) return 0.0;
  const double aBytes =
      static_cast<double>(p.batch * s.bm * s.bk) * sizeof(double);
  const double bBytes =
      static_cast<double>(p.batch * s.bk * s.bn) * sizeof(double);
  const double cBytes =
      static_cast<double>(p.batch * s.bm * s.bn) * sizeof(double);
  const bool readsC = s.chunk > 0 || p.beta != 0.0;
  const double messages = readsC ? 4.0 : 3.0;
  const double bytes = aBytes + bBytes + cBytes + (readsC ? cBytes : 0.0);
  return messages * arch.nocLatencySeconds +
         bytes / arch.nocBandwidthBytesPerSec;
}

GemmProblem shardProblem(const GemmProblem& p, const Shard& s) {
  GemmProblem sub = p;
  sub.m = s.bm;
  sub.n = s.bn;
  sub.k = s.bk;
  // Chained K reduction: chunk 0 applies the caller's beta, every later
  // chunk accumulates onto the previous partial with beta == 1 (identity
  // scaling is bit-exact, so the chain reproduces the single run).
  if (s.chunk > 0) sub.beta = 1.0;
  return sub;
}

std::string shardLabel(const Shard& s) {
  return strCat("block ", s.block, " chunk ", s.chunk, " [m ", s.m0, "..",
                s.m0 + s.bm, " n ", s.n0, "..", s.n0 + s.bn, " k ", s.k0,
                "..", s.k0 + s.bk, "]");
}

void checkConfig(const CompiledKernel& kernel,
                 const sunway::ArchConfig& arch, int groups,
                 std::int64_t kSplit) {
  if (groups < 1)
    throwInput(strCat("sharded execution needs at least one group, got ",
                      groups));
  if (groups > arch.coreGroups)
    throwInput(strCat("requested ", groups, " groups but the node has ",
                      arch.coreGroups, " core groups"));
  if (kSplit < 1)
    throwInput(strCat("K split must be at least 1, got ", kSplit));
  if (kSplit > 1 && kernel.options.fusion == FusionKind::kEpilogueRelu)
    throwInput(
        "K-split sharding cannot chain an epilogue-fused kernel: the "
        "activation would apply to every partial instead of once");
}

perf::PerfReport buildShardedReport(const CompiledKernel& kernel,
                                    const sunway::ArchConfig& arch,
                                    const GemmProblem& p,
                                    const ShardedOutcome& outcome,
                                    const char* engine, int cpeCount) {
  perf::RunSample sample;
  sample.kernel = kernel.program.name;
  sample.engine = engine;
  sample.m = p.m;
  sample.n = p.n;
  sample.k = p.k;
  sample.batch = p.batch;
  sample.wallSeconds = outcome.seconds;
  sample.cpeCount = cpeCount;
  sample.reportedFlops = rt::gemmFlops(p.m, p.n, p.k, p.batch);
  const sunway::CpeCounters& totals = outcome.counters;
  sample.computeSeconds = totals.computeSeconds;
  sample.dmaStallSeconds = totals.dmaStallSeconds;
  sample.rmaStallSeconds = totals.rmaStallSeconds;
  sample.syncStallSeconds = totals.syncStallSeconds;
  sample.retryStallSeconds = totals.retryStallSeconds;
  sample.dmaBusySeconds = totals.dmaBusySeconds;
  sample.rmaBusySeconds = totals.rmaBusySeconds;
  sample.dmaMessages = totals.dmaMessages;
  sample.dmaBytes = totals.dmaBytes;
  sample.rmaBroadcastsSent = totals.rmaBroadcastsSent;
  sample.rmaBytesSent = totals.rmaBytesSent;
  sample.syncs = totals.syncs;
  sample.microKernelCalls = totals.microKernelCalls;
  sample.faultsInjected = totals.faultsInjected;
  sample.dmaRetries = totals.dmaRetries;
  return perf::buildPerfReport(
      sample, rt::machineModelFromArch(arch, outcome.concurrentGroups));
}

}  // namespace

ShardPlan planShards(const CompiledKernel& kernel,
                     const sunway::ArchConfig& arch,
                     const GemmProblem& problem, int groups,
                     std::int64_t kSplit) {
  checkConfig(kernel, arch, groups, kSplit);
  ShardPlan plan;

  // Near-square factorisation of the group count over C: pick the divisor
  // pair whose block aspect ratio best matches the matrix aspect ratio
  // (log-symmetric score, deterministic tie-break on the smaller row
  // count), then clamp to the matrix extents for degenerate shapes.
  int bestRows = 1;
  double bestScore = std::numeric_limits<double>::infinity();
  for (int r = 1; r <= groups; ++r) {
    if (groups % r != 0) continue;
    const int c = groups / r;
    const double score =
        std::abs(std::log((static_cast<double>(problem.m) / r) /
                          (static_cast<double>(problem.n) / c)));
    if (score < bestScore) {
      bestScore = score;
      bestRows = r;
    }
  }
  plan.rowBlocks = static_cast<int>(
      std::min<std::int64_t>(bestRows, problem.m));
  plan.colBlocks = static_cast<int>(
      std::min<std::int64_t>(groups / bestRows, problem.n));

  // K chunk boundaries align to the kernel's K padding unit so every
  // chunk's internal tile decomposition is a prefix of the single run's.
  plan.kUnit = kernel.options.useRma
                   ? kernel.options.tileK * kernel.options.stripFactor
                   : kernel.options.tileK;
  const std::int64_t totalUnits = ceilDiv(problem.k, plan.kUnit);
  plan.kChunks = std::min<std::int64_t>(kSplit, totalUnits);

  std::vector<Range> kRanges;
  {
    const std::int64_t baseUnits = totalUnits / plan.kChunks;
    const std::int64_t extraUnits = totalUnits % plan.kChunks;
    std::int64_t k0 = 0;
    for (std::int64_t c = 0; c < plan.kChunks; ++c) {
      const std::int64_t units = baseUnits + (c < extraUnits ? 1 : 0);
      const std::int64_t size =
          std::min(units * plan.kUnit, problem.k - k0);
      kRanges.push_back(Range{k0, size});
      k0 += size;
    }
  }

  const std::vector<Range> rowRanges =
      evenSplit(problem.m, plan.rowBlocks);
  const std::vector<Range> colRanges =
      evenSplit(problem.n, plan.colBlocks);
  for (int ri = 0; ri < plan.rowBlocks; ++ri)
    for (int ci = 0; ci < plan.colBlocks; ++ci) {
      const int block = ri * plan.colBlocks + ci;
      for (std::int64_t chunk = 0; chunk < plan.kChunks; ++chunk) {
        Shard s;
        s.block = block;
        s.chunk = chunk;
        // Chunks of one block rotate across groups so chained K
        // reductions exercise the cross-group hand-off.
        s.group = static_cast<int>((block * plan.kChunks + chunk) %
                                   groups);
        s.m0 = rowRanges[static_cast<std::size_t>(ri)].begin;
        s.bm = rowRanges[static_cast<std::size_t>(ri)].extent;
        s.n0 = colRanges[static_cast<std::size_t>(ci)].begin;
        s.bn = colRanges[static_cast<std::size_t>(ci)].extent;
        s.k0 = kRanges[static_cast<std::size_t>(chunk)].begin;
        s.bk = kRanges[static_cast<std::size_t>(chunk)].extent;
        plan.shards.push_back(s);
      }
    }
  return plan;
}

ShardedOutcome runShardedFunctional(const CompiledKernel& kernel,
                                    const sunway::ArchConfig& arch,
                                    const ShardedConfig& config,
                                    const GemmProblem& problem,
                                    std::span<const double> a,
                                    std::span<const double> b,
                                    std::span<double> c) {
  const ShardPlan plan =
      planShards(kernel, arch, problem, config.groups, config.kSplit);
  const int concurrency = plan.concurrency(config.groups);
  const sunway::ArchConfig groupArch =
      arch.forConcurrentGroups(concurrency);

  ShardedOutcome outcome;
  outcome.rowBlocks = plan.rowBlocks;
  outcome.colBlocks = plan.colBlocks;
  outcome.kChunks = plan.kChunks;
  outcome.concurrentGroups = concurrency;
  outcome.contentionDerate = arch.contentionDerate(concurrency);

  struct BlockState {
    std::vector<double> cBuf;
    std::int64_t chunksDone = 0;
  };
  std::vector<BlockState> blocks(static_cast<std::size_t>(plan.blocks()));

  // Shards per worker group, in plan order.  Workers pick the first of
  // their shards whose predecessor chunk is done — skipping ahead past
  // blocked chains, which is required for progress: with chunks of one
  // block assigned round-robin, strict in-order queues can deadlock
  // (group 0 waiting on a chunk only group 1 would run, and vice versa).
  std::vector<std::vector<std::size_t>> perGroup(
      static_cast<std::size_t>(config.groups));
  for (std::size_t i = 0; i < plan.shards.size(); ++i)
    perGroup[static_cast<std::size_t>(plan.shards[i].group)].push_back(i);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<char> started(plan.shards.size(), 0);
  std::exception_ptr abortError;
  std::vector<double> groupBusy(static_cast<std::size_t>(config.groups));
  std::vector<double> groupComm(static_cast<std::size_t>(config.groups));
  std::vector<double> chainSeconds(
      static_cast<std::size_t>(plan.blocks()));

  auto runShard = [&](int group, const Shard& s) {
    const GemmProblem sub = shardProblem(problem, s);
    std::vector<double> aBlk = gatherA(a, kernel.options, problem, s);
    std::vector<double> bBlk = gatherB(b, kernel.options, problem, s);
    BlockState& state = blocks[static_cast<std::size_t>(s.block)];
    std::int64_t cGatherBytes = 0;
    if (s.chunk == 0) {
      // beta == 0 never reads C: a zero buffer satisfies the kernel's
      // writes without touching the caller's (possibly uninitialised) C.
      if (problem.beta != 0.0) {
        state.cBuf = gatherBlock(c, problem.batch, problem.m, problem.n,
                                 s.m0, s.bm, s.n0, s.bn);
        cGatherBytes = static_cast<std::int64_t>(state.cBuf.size() *
                                                 sizeof(double));
      } else {
        state.cBuf.assign(
            static_cast<std::size_t>(problem.batch * s.bm * s.bn), 0.0);
      }
    }

    FunctionalRunConfig runConfig = config.run;
    runConfig.faultPlan =
        group == config.faultGroup ? config.groupFaultPlan : nullptr;

    // Fault domain isolation: snapshot the partial so a mid-run abort in
    // this group's mesh can be rolled back and re-executed fault-free
    // without corrupting the chain (or any other group's block).
    std::vector<double> snapshot;
    if (runConfig.faultPlan != nullptr) snapshot = state.cBuf;

    rt::RunOutcome run;
    try {
      run = runGemmFunctional(kernel, groupArch, sub, aBlk, bBlk,
                              state.cBuf, runConfig);
    } catch (const ProtocolError& e) {
      // A fault-free mesh aborting is a kernel/simulator bug, not a
      // recoverable group failure — let it surface.
      if (runConfig.faultPlan == nullptr) throw;
      // Node-level watchdog view: name the stuck group and carry its
      // per-CPE state dump, then degrade the group to a fault-free
      // re-run of the same shard.
      SW_WARN("sharded", "event=group_abort group=", group, " shard=\"",
              shardLabel(s), "\" error=", e.what());
      {
        std::lock_guard<std::mutex> lock(mu);
        outcome.failures.push_back(
            ShardedOutcome::GroupFailure{group, shardLabel(s), e.what()});
      }
      state.cBuf = std::move(snapshot);
      runConfig.faultPlan = nullptr;
      run = runGemmFunctional(kernel, groupArch, sub, aBlk, bBlk,
                              state.cBuf, runConfig);
    }

    std::int64_t cScatterBytes = 0;
    if (s.chunk == plan.kChunks - 1) {
      scatterBlock(c, problem.batch, problem.m, problem.n, s.m0, s.bm,
                   s.n0, s.bn, state.cBuf);
      cScatterBytes =
          static_cast<std::int64_t>(state.cBuf.size() * sizeof(double));
    }

    const double comm = shardCommSeconds(arch, concurrency, problem, s);
    const std::int64_t gatherBytes =
        static_cast<std::int64_t>((aBlk.size() + bBlk.size()) *
                                  sizeof(double)) +
        cGatherBytes + cScatterBytes;
    std::lock_guard<std::mutex> lock(mu);
    outcome.counters.add(run.counters);
    outcome.hostCopyBytes += run.hostCopyBytes + gatherBytes;
    outcome.shardsRun += 1;
    groupBusy[static_cast<std::size_t>(group)] += run.seconds;
    groupComm[static_cast<std::size_t>(group)] += comm;
    chainSeconds[static_cast<std::size_t>(s.block)] += run.seconds + comm;
  };

  auto worker = [&](int group) {
    const std::vector<std::size_t>& mine =
        perGroup[static_cast<std::size_t>(group)];
    for (;;) {
      std::size_t pick = plan.shards.size();
      {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
          if (abortError != nullptr) return;
          bool anyLeft = false;
          for (const std::size_t idx : mine) {
            if (started[idx] != 0) continue;
            anyLeft = true;
            const Shard& s = plan.shards[idx];
            if (blocks[static_cast<std::size_t>(s.block)].chunksDone ==
                s.chunk) {
              pick = idx;
              started[idx] = 1;
              break;
            }
          }
          if (pick != plan.shards.size() || !anyLeft) break;
          cv.wait(lock);
        }
      }
      if (pick == plan.shards.size()) return;
      const Shard& s = plan.shards[pick];
      try {
        runShard(group, s);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (abortError == nullptr) abortError = std::current_exception();
        cv.notify_all();
        return;
      }
      std::lock_guard<std::mutex> lock(mu);
      blocks[static_cast<std::size_t>(s.block)].chunksDone += 1;
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.groups));
  for (int g = 0; g < config.groups; ++g)
    if (!perGroup[static_cast<std::size_t>(g)].empty())
      threads.emplace_back(worker, g);
  outcome.groupsUsed = static_cast<int>(threads.size());
  for (std::thread& t : threads) t.join();
  if (abortError != nullptr) std::rethrow_exception(abortError);

  double wall = 0.0;
  for (int g = 0; g < config.groups; ++g) {
    const std::size_t gi = static_cast<std::size_t>(g);
    wall = std::max(wall, groupBusy[gi] + groupComm[gi]);
    outcome.computeSeconds = std::max(outcome.computeSeconds, groupBusy[gi]);
    outcome.communicationSeconds =
        std::max(outcome.communicationSeconds, groupComm[gi]);
  }
  for (const double chain : chainSeconds) wall = std::max(wall, chain);
  outcome.seconds = wall;
  const double flops =
      rt::gemmFlops(problem.m, problem.n, problem.k, problem.batch);
  outcome.gflops = wall > 0.0 ? flops / wall / 1e9 : 0.0;
  // Mesh-run counters are 64-CPE sums per shard, so the aggregate wall
  // normaliser is CPEs across all concurrently streaming meshes.
  outcome.report =
      buildShardedReport(kernel, arch, problem, outcome, "sharded-mesh",
                         concurrency * arch.meshSize());
  return outcome;
}

ShardedOutcome estimateSharded(const CompiledKernel& kernel,
                               const sunway::ArchConfig& arch,
                               const ShardedConfig& config,
                               const GemmProblem& problem) {
  const ShardPlan plan =
      planShards(kernel, arch, problem, config.groups, config.kSplit);
  const int concurrency = plan.concurrency(config.groups);
  const sunway::ArchConfig groupArch =
      arch.forConcurrentGroups(concurrency);

  ShardedOutcome outcome;
  outcome.rowBlocks = plan.rowBlocks;
  outcome.colBlocks = plan.colBlocks;
  outcome.kChunks = plan.kChunks;
  outcome.concurrentGroups = concurrency;
  outcome.contentionDerate = arch.contentionDerate(concurrency);

  std::vector<double> groupBusy(static_cast<std::size_t>(config.groups));
  std::vector<double> groupComm(static_cast<std::size_t>(config.groups));
  std::vector<double> chainSeconds(
      static_cast<std::size_t>(plan.blocks()));
  std::vector<char> groupUsed(static_cast<std::size_t>(config.groups), 0);
  for (const Shard& s : plan.shards) {
    const GemmProblem sub = shardProblem(problem, s);
    const rt::RunOutcome est = estimateGemm(kernel, groupArch, sub);
    const double comm = shardCommSeconds(arch, concurrency, problem, s);
    const std::size_t gi = static_cast<std::size_t>(s.group);
    groupBusy[gi] += est.seconds;
    groupComm[gi] += comm;
    groupUsed[gi] = 1;
    chainSeconds[static_cast<std::size_t>(s.block)] += est.seconds + comm;
    outcome.counters.add(est.counters);
    outcome.shardsRun += 1;
  }
  for (const char used : groupUsed) outcome.groupsUsed += used != 0;

  // Critical path: the busiest group's timeline, or the longest chained
  // K reduction if its serial chain dominates.
  double wall = 0.0;
  for (std::size_t gi = 0; gi < groupBusy.size(); ++gi) {
    wall = std::max(wall, groupBusy[gi] + groupComm[gi]);
    outcome.computeSeconds = std::max(outcome.computeSeconds, groupBusy[gi]);
    outcome.communicationSeconds =
        std::max(outcome.communicationSeconds, groupComm[gi]);
  }
  for (const double chain : chainSeconds) wall = std::max(wall, chain);
  outcome.seconds = wall;
  const double flops =
      rt::gemmFlops(problem.m, problem.n, problem.k, problem.batch);
  outcome.gflops = wall > 0.0 ? flops / wall / 1e9 : 0.0;
  // Estimator counters are symmetric single-CPE samples per shard: the
  // sample's cpeCount is the group count while the machine model carries
  // the node-wide mesh size, preserving the estimator's meshScale.
  outcome.report = buildShardedReport(kernel, arch, problem, outcome,
                                      "sharded-estimator", concurrency);
  return outcome;
}

}  // namespace sw::core
