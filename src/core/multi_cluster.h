// Multi-core-group decomposition — the paper's future-work layer (§2.1:
// "one can gradually break down a GEMM routine into independent smaller
// ones until each piece can be handled by a cluster"; §9: MPI code
// generation is planned).
//
// SW26010Pro packs six core groups per processor, connected by the network
// on chip.  This module decomposes C row-block-wise across clusters: each
// cluster receives its A row panel and the full B (scatter/broadcast over
// the NoC), runs the single-cluster generated kernel, and returns its C
// block.  The functional path executes every cluster's block on the mesh
// simulator (correctness-testable); the timing path adds a communication
// model on top of the per-cluster estimate.
#pragma once

#include <cstdint>
#include <span>

#include "core/compiler.h"
#include "core/gemm_runner.h"

namespace sw::core {

struct MultiClusterConfig {
  /// Core groups per SW26010Pro processor (§2.1).
  int clusters = 6;
  /// Effective per-cluster NoC bandwidth for operand distribution.
  double nocBandwidthBytesPerSec = 25.0e9;
  double nocLatencySeconds = 2.0e-6;
};

struct MultiClusterOutcome {
  double seconds = 0.0;
  double gflops = 0.0;
  int clustersUsed = 0;
  /// Time spent distributing A/B and collecting C (not overlapped with
  /// compute; overlap is exactly the future work the paper defers).
  double communicationSeconds = 0.0;
  double computeSeconds = 0.0;
};

/// Timing estimate of the multi-cluster decomposition.
MultiClusterOutcome estimateMultiCluster(const CompiledKernel& kernel,
                                         const sunway::ArchConfig& arch,
                                         const MultiClusterConfig& config,
                                         const GemmProblem& problem);

/// Functional execution: runs each cluster's row block on the mesh
/// simulator sequentially; results land in `c` exactly as a single-cluster
/// run would produce them.
MultiClusterOutcome runMultiClusterFunctional(
    const CompiledKernel& kernel, const sunway::ArchConfig& arch,
    const MultiClusterConfig& config, const GemmProblem& problem,
    std::span<const double> a, std::span<const double> b,
    std::span<double> c);

}  // namespace sw::core
