#include "codegen/athread_printer.h"
#include "core/compiler.h"
#include "frontend/pattern.h"
#include "support/trace.h"

namespace sw::core {

CompiledKernel SwGemmCompiler::compileSource(const std::string& source,
                                             CodegenOptions base) const {
  frontend::GemmPatternInfo pattern;
  {
    trace::Span span("frontend.parse",
                     {trace::arg("sourceBytes",
                                 static_cast<std::int64_t>(source.size()))});
    pattern = frontend::analyzeGemmSource(source);
    span.addArg(trace::arg("function", pattern.functionName));
    span.addArg(trace::arg("batched", pattern.batched ? "true" : "false"));
  }
  base.batched = pattern.batched;
  base.transposeA = pattern.transposeA;
  base.transposeB = pattern.transposeB;
  switch (pattern.fusion) {
    case frontend::FusionPattern::kNone:
      base.fusion = FusionKind::kNone;
      break;
    case frontend::FusionPattern::kPrologueQuantize:
      base.fusion = FusionKind::kPrologueQuantize;
      break;
    case frontend::FusionPattern::kEpilogueRelu:
      base.fusion = FusionKind::kEpilogueRelu;
      break;
  }
  CompiledKernel kernel = compile(base);
  // Name the generated kernel after the user's function and re-emit the
  // sources under that name.
  kernel.program.name = pattern.functionName;
  codegen::GeneratedSources sources =
      codegen::printAthreadSources(kernel.program);
  kernel.cpeSource = std::move(sources.cpe);
  kernel.mpeSource = std::move(sources.mpe);
  return kernel;
}

}  // namespace sw::core
