// Convenience execution wrappers around a CompiledKernel: functional runs
// on the threaded mesh simulator and scalable timing estimates.  Two host
// paths exist: the padded reference (zero-padded shadow arrays per §8.1's
// convention) and the edge-tile path, which binds the caller's unpadded
// arrays directly when the kernel was compiled with edge tiles.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/compiler.h"
#include "runtime/executor.h"
#include "sunway/fault.h"

namespace sw::core {

struct GemmProblem {
  std::int64_t m = 0, n = 0, k = 0;
  std::int64_t batch = 1;
  double alpha = 1.0;
  double beta = 1.0;
};

/// How the host arrays meet the kernel's shape preconditions
/// (--pad-mode).
enum class PadMode {
  /// Edge-tile kernels run on the caller's arrays directly; others pad.
  kAuto,
  /// Always allocate zero-padded shadow arrays (the §8.1 reference path).
  /// Works for any kernel, including edge-tile ones (whose clamps never
  /// bind at padded sizes).
  kPadded,
  /// Bind the caller's unpadded arrays directly (no pack/unpack copies);
  /// requires a kernel compiled with CodegenOptions::edgeTiles.
  kEdge,
};

/// Resilience knobs for functional mesh runs.
struct FunctionalRunConfig {
  /// Installed on the mesh before running; nullptr disables injection.
  std::shared_ptr<const sunway::FaultPlan> faultPlan;
  /// No-progress deadline; negative keeps the mesh default
  /// (SWCODEGEN_WATCHDOG_MS or 5000 ms), 0 disables the watchdog.
  double watchdogMillis = -1.0;
  /// Per-CPE engine: the lowered plan by default (falls back to the
  /// tree-walk when the kernel carries no plan), the tree-walking
  /// reference interpreter, or the native JIT engine (src/jit).  kNative
  /// compiles the program to a host shared object and runs real machine
  /// code: C results and discrete counters are bit-identical to the
  /// simulator engines, but seconds are measured wall-clock and the
  /// timing counters stay zero.  A fault plan forces the plan engine
  /// (fault injection is a simulator feature), and any environmental JIT
  /// failure (missing compiler, unwritable cache, dlopen error) degrades
  /// to the plan engine after bumping the `jit.fallback` metric.
  rt::ExecEngine engine = rt::ExecEngine::kPlan;
  /// Host-array strategy; see PadMode.
  PadMode padMode = PadMode::kAuto;
  /// Native engine only: root of the JIT .so cache.  Empty resolves
  /// $SWCODEGEN_JIT_CACHE_DIR, then a per-user temp directory (see
  /// jit::resolveNativeCacheDir).
  std::string jitCacheDir;
};

/// Run the compiled kernel functionally on the 64-thread mesh simulator.
/// `a` is batch*m*k row-major, `b` batch*k*n, `c` batch*m*n (read-write:
/// C = alpha*A*B + beta*C lands back in `c`; transposed operands use their
/// transposed layouts).  Depending on the resolved PadMode the inputs are
/// either zero-padded into shadow arrays or bound in place (edge tiles).
/// BLAS semantics hold either way: beta == 0 never reads C.  Returns
/// timing/counters (including hostCopyBytes moved by pack/unpack).
rt::RunOutcome runGemmFunctional(const CompiledKernel& kernel,
                                 const sunway::ArchConfig& arch,
                                 const GemmProblem& problem,
                                 std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> c,
                                 const FunctionalRunConfig& runConfig = {});

/// Timing-only estimate for paper-scale shapes (no data, sequential
/// symmetric model).
rt::RunOutcome estimateGemm(const CompiledKernel& kernel,
                            const sunway::ArchConfig& arch,
                            const GemmProblem& problem);

}  // namespace sw::core
