// Deterministic serialization of CompiledKernel, and the canonical cache
// key of a compile request.
//
// The kernel-compilation service (src/service) persists compiled kernels
// on disk and replays them in later processes, so the format must be
// byte-stable: serializing the same kernel always yields the same bytes,
// and serialize→deserialize→serialize is the identity.  The format is a
// versioned, tagged token stream (integers, length-prefixed strings) with
// no pointers, timestamps or locale-dependent rendering.
#pragma once

#include <string>

#include "core/compiler.h"

namespace sw::core {

/// Bumped whenever the serialized layout of CompiledKernel (or anything it
/// embeds) changes; readers reject other versions so a stale disk cache is
/// recompiled instead of misparsed.
inline constexpr int kKernelSerdesVersion = 3;

/// Serialize the whole kernel: options, the executable program AST, the
/// generated CPE/MPE sources and the three schedule-tree dumps.
[[nodiscard]] std::string serializeCompiledKernel(const CompiledKernel& kernel);

/// Inverse of serializeCompiledKernel.  Throws InputError on truncation,
/// corruption or a version mismatch.
[[nodiscard]] CompiledKernel deserializeCompiledKernel(const std::string& text);

/// Canonical, byte-stable rendering of everything a compile's output
/// depends on: every CodegenOptions field plus every ArchConfig field,
/// prefixed with the serdes version.  Two requests with equal keys are
/// guaranteed to produce byte-identical kernels (see
/// tests/compile_determinism_test.cc); the service digests this string for
/// cache addressing and stores it verbatim for collision checks.
[[nodiscard]] std::string canonicalRequestKey(const CodegenOptions& options,
                                              const sunway::ArchConfig& arch);

}  // namespace sw::core
