#include "schedule/transforms.h"

#include "support/error.h"
#include "support/format.h"

namespace sw::sched {

namespace {

/// ceil(extent / divisor).  Exact for the padded shapes of §8.1; for
/// arbitrary shapes the extra partial tile is handled by runtime clamping
/// (edge-tile codegen).  Note ceil(ceil(K/a)/b) == ceil(K/(a*b)), so
/// composing symbolic divisors stays a single paramDiv.
Extent divideExtent(const Extent& extent, std::int64_t divisor) {
  SW_CHECK(divisor > 0, "extent divisor must be positive");
  if (extent.isConstant()) {
    return Extent::constant((extent.constantPart() + divisor - 1) / divisor);
  }
  SW_CHECK(extent.constantPart() == 0,
           "cannot divide an offset symbolic extent");
  return Extent::paramDiv(*extent.param(), extent.divisor() * divisor);
}

/// Detach the only child of `node`, leaving it childless.
NodePtr detachOnlyChild(ScheduleNode& node) {
  SW_CHECK(node.children().size() == 1, "expected exactly one child");
  NodePtr child = std::move(node.children()[0]);
  node.children().clear();
  return child;
}

BandNode& findBandByVarIn(ScheduleNode& node, const std::string& var,
                          BandNode*& found) {
  if (node.kind() == NodeKind::kBand) {
    auto& band = nodeCast<BandNode>(node);
    if (!band.members.empty() && band.members.front().var == var) {
      SW_CHECK(found == nullptr, strCat("variable '", var,
                                        "' heads more than one band"));
      found = &band;
    }
  }
  for (NodePtr& child : node.children()) findBandByVarIn(*child, var, found);
  return *found;
}

}  // namespace

ScheduleTree buildInitialTree(std::vector<poly::IntegerSet> domains,
                              const std::vector<bool>& coincident,
                              bool permutable) {
  SW_CHECK(!domains.empty(), "no statements");
  auto domain = std::make_unique<DomainNode>();
  auto band = std::make_unique<BandNode>();
  band->permutable = permutable;

  // The initial band covers the dims of the first (deepest) statement; the
  // GEMM pipeline builds one band over the GEMM statement's full nest.
  const poly::IntegerSet& primary = domains.front();
  SW_CHECK(coincident.size() == primary.dims().size(),
           "coincident flags arity mismatch");
  for (std::size_t d = 0; d < primary.dims().size(); ++d) {
    const std::string& dim = primary.dims()[d];
    BandMember member;
    member.var = dim;  // initial schedule is the identity
    member.exprs.emplace_back(primary.tupleName(), poly::AffineExpr::dim(dim));
    member.coincident = coincident[d];
    auto bounds = primary.simpleBounds(dim);
    SW_CHECK(bounds.has_value(),
             strCat("dimension '", dim, "' lacks simple 0..extent bounds"));
    // upper is inclusive: extent = upper + 1.  The frontend always produces
    // `dim <= Param - 1`, so upper+1 is either a constant or a bare param.
    poly::AffineExpr extentExpr =
        bounds->upper + poly::AffineExpr::constant(1);
    if (extentExpr.isConstant()) {
      member.extent = Extent::constant(extentExpr.constantTerm());
    } else {
      auto single = extentExpr.asSingleDim();
      SW_CHECK(single.has_value(),
               strCat("unsupported extent expression: ",
                      extentExpr.toString()));
      member.extent = Extent::paramDiv(*single, 1);
    }
    band->members.push_back(std::move(member));
  }

  band->appendChild(std::make_unique<LeafNode>());
  domain->domains = std::move(domains);
  domain->appendChild(std::move(band));
  return ScheduleTree(std::move(domain));
}

BandNode& tileBand(ScheduleTree& tree, BandNode& band,
                   const std::vector<std::int64_t>& sizes,
                   const std::vector<std::string>& outerVars,
                   const std::vector<std::string>& innerVars) {
  (void)tree;
  SW_CHECK(sizes.size() == band.members.size(), "tile size arity mismatch");
  SW_CHECK(outerVars.size() == sizes.size() && innerVars.size() == sizes.size(),
           "tile variable-name arity mismatch");
  SW_CHECK(band.permutable, "tiling requires a permutable band");

  auto inner = std::make_unique<BandNode>();
  inner->permutable = true;
  for (std::size_t d = 0; d < band.members.size(); ++d) {
    BandMember& outerMember = band.members[d];
    BandMember innerMember;
    innerMember.var = innerVars[d];
    innerMember.coincident = outerMember.coincident;
    innerMember.extent = Extent::constant(sizes[d]);
    for (auto& [stmt, expr] : outerMember.exprs)
      innerMember.exprs.emplace_back(
          stmt, expr - poly::AffineExpr::floorDiv(expr, sizes[d]) * sizes[d]);
    inner->members.push_back(std::move(innerMember));

    for (auto& [stmt, expr] : outerMember.exprs)
      expr = poly::AffineExpr::floorDiv(expr, sizes[d]);
    outerMember.var = outerVars[d];
    outerMember.extent = divideExtent(outerMember.extent, sizes[d]);
  }

  NodePtr child = detachOnlyChild(band);
  inner->appendChild(std::move(child));
  band.appendChild(std::move(inner));
  return band;
}

BandNode& stripMineMember(ScheduleTree& tree, BandNode& band,
                          std::size_t index, std::int64_t factor,
                          const std::string& outerVar,
                          const std::string& innerVar) {
  (void)tree;
  SW_CHECK(index < band.members.size(), "strip-mine index out of range");
  BandMember& member = band.members[index];

  BandMember outerMember;
  outerMember.var = outerVar;
  outerMember.coincident = member.coincident;
  outerMember.extent = divideExtent(member.extent, factor);
  for (auto& [stmt, expr] : member.exprs)
    outerMember.exprs.emplace_back(stmt,
                                   poly::AffineExpr::floorDiv(expr, factor));

  // Residue stays in the original member.
  for (auto& [stmt, expr] : member.exprs)
    expr = expr - poly::AffineExpr::floorDiv(expr, factor) * factor;
  member.var = innerVar;
  member.extent = Extent::constant(factor);

  // The outer member becomes its own band directly above `band`'s position:
  // splice a new band that adopts everything `band` had.
  auto outerBand = std::make_unique<BandNode>();
  outerBand->permutable = band.permutable;
  outerBand->members.push_back(std::move(outerMember));

  // Swap contents: `band` node in the tree becomes the outer band, and the
  // residue moves to a new inner band, preserving parent links.
  auto innerBand = std::make_unique<BandNode>();
  innerBand->permutable = band.permutable;
  innerBand->members = std::move(band.members);
  band.members = std::move(outerBand->members);

  NodePtr child = detachOnlyChild(band);
  innerBand->appendChild(std::move(child));
  band.appendChild(std::move(innerBand));
  return band;
}

BandNode& splitBand(ScheduleTree& tree, BandNode& band, std::size_t count) {
  (void)tree;
  SW_CHECK(count > 0 && count < band.members.size(),
           "band split point out of range");
  auto inner = std::make_unique<BandNode>();
  inner->permutable = band.permutable;
  inner->members.assign(std::make_move_iterator(band.members.begin() + count),
                        std::make_move_iterator(band.members.end()));
  band.members.resize(count);

  NodePtr child = detachOnlyChild(band);
  inner->appendChild(std::move(child));
  BandNode& result = *inner;
  band.appendChild(std::move(inner));
  return result;
}

void bindMember(BandNode& band, std::size_t index,
                const std::string& binding) {
  SW_CHECK(index < band.members.size(), "bind index out of range");
  band.members[index].binding = binding;
}

BandNode& findBandByVar(ScheduleTree& tree, const std::string& var) {
  BandNode* found = nullptr;
  findBandByVarIn(tree.root(), var, found);
  SW_CHECK(found != nullptr, strCat("no band headed by variable '", var, "'"));
  return *found;
}

ScheduleNode& wrapOnlyChild(ScheduleNode& parent, NodePtr wrapper) {
  NodePtr child = detachOnlyChild(parent);
  wrapper->appendChild(std::move(child));
  ScheduleNode& result = *wrapper;
  parent.appendChild(std::move(wrapper));
  return result;
}

NodePtr makeFilter(std::vector<FilterElement> elements,
                   std::optional<RangeRestriction> range, NodePtr child) {
  auto filter = std::make_unique<FilterNode>();
  filter->elements = std::move(elements);
  filter->range = std::move(range);
  if (child != nullptr) filter->appendChild(std::move(child));
  return filter;
}

FilterElement statementElement(std::string name) {
  return FilterElement{FilterElement::Kind::kStatement, std::move(name), 1};
}
FilterElement copyElement(std::string name) {
  return FilterElement{FilterElement::Kind::kCopy, std::move(name), 1};
}
FilterElement waitElement(std::string replySlot, std::int64_t count) {
  return FilterElement{FilterElement::Kind::kReplyWait, std::move(replySlot),
                       count};
}
FilterElement syncElement() {
  return FilterElement{FilterElement::Kind::kSync, "sync", 1};
}

}  // namespace sw::sched
