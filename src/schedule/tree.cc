#include "schedule/tree.h"

#include <set>

#include "support/error.h"
#include "support/format.h"

namespace sw::sched {

std::int64_t Extent::evaluate(
    const std::map<std::string, std::int64_t>& params) const {
  if (!param_) return constant_;
  auto it = params.find(*param_);
  SW_CHECK(it != params.end(), strCat("unbound extent parameter '", *param_,
                                      "'"));
  SW_CHECK(it->second > 0, strCat("extent parameter ", *param_, "=",
                                  it->second, " must be positive"));
  // Ceiling division: non-multiple shapes get one extra (partial) tile,
  // whose transfers/compute are clamped at runtime by the edge-tile path.
  return constant_ + (it->second + divisor_ - 1) / divisor_;
}

std::string Extent::toString() const {
  if (!param_) return strCat(constant_);
  std::string base =
      divisor_ == 1 ? *param_ : strCat(*param_, "/", divisor_);
  if (constant_ == 0) return base;
  if (constant_ > 0) return strCat(base, " + ", constant_);
  return strCat(base, " - ", -constant_);
}

ScheduleNode& ScheduleNode::onlyChild() {
  SW_CHECK(children_.size() == 1,
           strCat("expected exactly one child, found ", children_.size()));
  return *children_[0];
}

const ScheduleNode& ScheduleNode::onlyChild() const {
  SW_CHECK(children_.size() == 1,
           strCat("expected exactly one child, found ", children_.size()));
  return *children_[0];
}

void ScheduleNode::cloneChildrenInto(ScheduleNode& target) const {
  for (const NodePtr& child : children_)
    target.appendChild(child->clone());
}

NodePtr DomainNode::clone() const {
  auto copy = std::make_unique<DomainNode>();
  copy->domains = domains;
  cloneChildrenInto(*copy);
  return copy;
}

NodePtr BandNode::clone() const {
  auto copy = std::make_unique<BandNode>();
  copy->members = members;
  copy->permutable = permutable;
  cloneChildrenInto(*copy);
  return copy;
}

NodePtr SequenceNode::clone() const {
  auto copy = std::make_unique<SequenceNode>();
  cloneChildrenInto(*copy);
  return copy;
}

bool FilterNode::selectsStatement(const std::string& name) const {
  for (const FilterElement& e : elements)
    if (e.kind == FilterElement::Kind::kStatement && e.name == name)
      return true;
  return false;
}

NodePtr FilterNode::clone() const {
  auto copy = std::make_unique<FilterNode>();
  copy->elements = elements;
  copy->range = range;
  cloneChildrenInto(*copy);
  return copy;
}

const CopyStmt* ExtensionNode::findCopy(const std::string& name) const {
  for (const CopyStmt& c : copies)
    if (c.name == name) return &c;
  return nullptr;
}

NodePtr ExtensionNode::clone() const {
  auto copy = std::make_unique<ExtensionNode>();
  copy->copies = copies;
  cloneChildrenInto(*copy);
  return copy;
}

NodePtr MarkNode::clone() const {
  auto copy = std::make_unique<MarkNode>();
  copy->label = label;
  copy->compute = compute;
  copy->elementwise = elementwise;
  cloneChildrenInto(*copy);
  return copy;
}

NodePtr LeafNode::clone() const { return std::make_unique<LeafNode>(); }

ScheduleTree::ScheduleTree(NodePtr root) : root_(std::move(root)) {
  SW_CHECK(root_ != nullptr, "schedule tree root is null");
  SW_CHECK(root_->kind() == NodeKind::kDomain,
           "schedule tree root must be a domain node");
}

DomainNode& ScheduleTree::root() { return nodeCast<DomainNode>(*root_); }
const DomainNode& ScheduleTree::root() const {
  return nodeCast<DomainNode>(*root_);
}

ScheduleTree ScheduleTree::clone() const {
  return ScheduleTree(root_->clone());
}

namespace {

const char* filterElementTag(FilterElement::Kind kind) {
  switch (kind) {
    case FilterElement::Kind::kStatement:
      return "";
    case FilterElement::Kind::kCopy:
      return "copy:";
    case FilterElement::Kind::kReplyWait:
      return "wait:";
    case FilterElement::Kind::kSync:
      return "sync";
  }
  return "?";
}

void printNode(const ScheduleNode& node, CodeWriter& w) {
  switch (node.kind()) {
    case NodeKind::kDomain: {
      const auto& domain = nodeCast<DomainNode>(node);
      std::vector<std::string> parts;
      for (const auto& s : domain.domains) parts.push_back(s.toString());
      w.line("DOMAIN: {", strJoin(parts, "; "), "}");
      break;
    }
    case NodeKind::kBand: {
      const auto& band = nodeCast<BandNode>(node);
      std::vector<std::string> parts;
      for (const BandMember& m : band.members) {
        std::string target = m.binding ? *m.binding : m.var;
        std::vector<std::string> perStmt;
        for (const auto& [stmt, expr] : m.exprs)
          perStmt.push_back(strCat(stmt, " -> ", expr.toString()));
        parts.push_back(strCat(target, "[0,", m.extent.toString(), ") = {",
                               strJoin(perStmt, "; "), "}",
                               m.coincident ? " (coincident)" : ""));
      }
      w.line("BAND", band.permutable ? " (permutable)" : "", ": ",
             strJoin(parts, " ; "));
      break;
    }
    case NodeKind::kSequence:
      w.line("SEQUENCE:");
      break;
    case NodeKind::kFilter: {
      const auto& filter = nodeCast<FilterNode>(node);
      std::vector<std::string> parts;
      for (const FilterElement& e : filter.elements)
        parts.push_back(strCat(filterElementTag(e.kind), e.name));
      std::string range;
      if (filter.range)
        range = strCat(" | ", filter.range->var, " in [",
                       filter.range->begin.toString(), ", ",
                       filter.range->end.toString(), ")");
      w.line("FILTER: {", strJoin(parts, ", "), "}", range);
      break;
    }
    case NodeKind::kExtension: {
      const auto& ext = nodeCast<ExtensionNode>(node);
      std::vector<std::string> parts;
      for (const CopyStmt& c : ext.copies) {
        std::string coords =
            strCat(c.array, "[", c.rowStart.toString(), "][",
                   c.colStart.toString(), "] tile ", c.tileRows, "x",
                   c.tileCols);
        parts.push_back(strCat(c.name, " -> ", coords));
      }
      w.line("EXTENSION: [", strJoin(parts, "; "), "]");
      break;
    }
    case NodeKind::kMark: {
      const auto& mark = nodeCast<MarkNode>(node);
      w.line("MARK: \"", mark.label, "\"");
      break;
    }
    case NodeKind::kLeaf:
      w.line("LEAF");
      break;
  }
  w.indent();
  for (const NodePtr& child : node.children()) printNode(*child, w);
  w.dedent();
}

struct Validator {
  std::set<std::string> boundVars;
  std::set<std::string> statements;
  std::vector<const ExtensionNode*> extensionStack;

  void visit(const ScheduleNode& node) {
    switch (node.kind()) {
      case NodeKind::kDomain: {
        const auto& domain = nodeCast<DomainNode>(node);
        SW_CHECK(!domain.domains.empty(), "domain node with no statements");
        for (const auto& s : domain.domains) {
          auto [it, inserted] = statements.insert(s.tupleName());
          (void)it;
          SW_CHECK(inserted,
                   strCat("duplicate statement '", s.tupleName(), "'"));
        }
        SW_CHECK(node.children().size() == 1, "domain must have one child");
        break;
      }
      case NodeKind::kBand: {
        const auto& band = nodeCast<BandNode>(node);
        SW_CHECK(!band.members.empty(), "empty band");
        SW_CHECK(node.children().size() == 1, "band must have one child");
        for (const BandMember& m : band.members) {
          SW_CHECK(!m.var.empty(), "band member without a variable name");
          auto [it, inserted] = boundVars.insert(m.var);
          (void)it;
          SW_CHECK(inserted,
                   strCat("variable '", m.var, "' bound more than once"));
        }
        break;
      }
      case NodeKind::kSequence: {
        SW_CHECK(!node.children().empty(), "empty sequence");
        for (const NodePtr& child : node.children())
          SW_CHECK(child->kind() == NodeKind::kFilter,
                   "sequence children must be filters");
        break;
      }
      case NodeKind::kFilter: {
        const auto& filter = nodeCast<FilterNode>(node);
        SW_CHECK(node.children().size() <= 1,
                 "filter must have at most one child");
        for (const FilterElement& e : filter.elements) {
          if (e.kind == FilterElement::Kind::kCopy) {
            bool found = false;
            for (const ExtensionNode* ext : extensionStack)
              if (ext->findCopy(e.name) != nullptr) found = true;
            SW_CHECK(found, strCat("filter references unknown copy '", e.name,
                                   "'"));
          }
          if (e.kind == FilterElement::Kind::kStatement)
            SW_CHECK(statements.count(e.name) == 1,
                     strCat("filter references unknown statement '", e.name,
                            "'"));
        }
        if (filter.range) {
          bool rebinds = boundVars.count(filter.range->var) != 0;
          SW_CHECK(!rebinds, strCat("range filter rebinds live variable '",
                                    filter.range->var, "'"));
          boundVars.insert(filter.range->var);
        }
        break;
      }
      case NodeKind::kExtension:
        SW_CHECK(node.children().size() == 1,
                 "extension must have one child");
        extensionStack.push_back(&nodeCast<ExtensionNode>(node));
        break;
      case NodeKind::kMark:
        SW_CHECK(node.children().size() <= 1, "mark must have <= 1 child");
        break;
      case NodeKind::kLeaf:
        SW_CHECK(node.children().empty(), "leaf with children");
        break;
    }

    for (const NodePtr& child : node.children()) visit(*child);

    // Restore scopes on exit.
    if (node.kind() == NodeKind::kBand)
      for (const BandMember& m : nodeCast<BandNode>(node).members)
        boundVars.erase(m.var);
    if (node.kind() == NodeKind::kFilter) {
      const auto& filter = nodeCast<FilterNode>(node);
      if (filter.range) boundVars.erase(filter.range->var);
    }
    if (node.kind() == NodeKind::kExtension) extensionStack.pop_back();
  }
};

}  // namespace

std::string ScheduleTree::toString() const {
  CodeWriter w;
  printNode(*root_, w);
  return w.str();
}

void ScheduleTree::validate() const {
  Validator validator;
  validator.visit(*root_);
}

}  // namespace sw::sched
