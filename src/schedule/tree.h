// Schedule trees — the compiler's central IR, following the isl schedule
// tree design the paper builds on (Grosser, Verdoolaege, Cohen, TOPLAS'15).
//
// Node kinds implemented (the slice the GEMM pipeline needs):
//   Domain     — root; the statement instance sets of the input program.
//   Band       — a multi-dimensional piece of schedule.  Each member holds
//                the per-statement affine schedule expression, the inferred
//                symbolic extent, the loop variable name the code generator
//                will introduce, and an optional hardware binding (Rid/Cid),
//                mirroring Fig.4b.
//   Sequence   — ordered composition; children are Filters.
//   Filter     — selects statements / copy statements / reply waits / syncs,
//                optionally with a range restriction over a schedule
//                variable (the peeling filters of Fig.11, e.g. floor(k/256)=0).
//   Extension  — introduces data-movement statements (Fig.9); holds the
//                CopyStmt descriptors referenced by name in Filters below.
//   Mark       — code-generation directive (the inline-assembly micro-kernel
//                invocation of §7.2, element-wise tile operations of §7.3).
//   Leaf       — executes whatever statements the enclosing filters select.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "poly/set.h"
#include "schedule/copy_stmt.h"
#include "schedule/extent.h"

namespace sw::sched {

enum class NodeKind {
  kDomain,
  kBand,
  kSequence,
  kFilter,
  kExtension,
  kMark,
  kLeaf,
};

class ScheduleNode;
using NodePtr = std::unique_ptr<ScheduleNode>;

class ScheduleNode {
 public:
  explicit ScheduleNode(NodeKind kind) : kind_(kind) {}
  virtual ~ScheduleNode() = default;

  ScheduleNode(const ScheduleNode&) = delete;
  ScheduleNode& operator=(const ScheduleNode&) = delete;

  [[nodiscard]] NodeKind kind() const { return kind_; }

  [[nodiscard]] std::vector<NodePtr>& children() { return children_; }
  [[nodiscard]] const std::vector<NodePtr>& children() const {
    return children_;
  }

  /// Single-child accessor for non-sequence nodes.
  [[nodiscard]] ScheduleNode& onlyChild();
  [[nodiscard]] const ScheduleNode& onlyChild() const;

  void appendChild(NodePtr child) { children_.push_back(std::move(child)); }

  [[nodiscard]] virtual NodePtr clone() const = 0;

 protected:
  void cloneChildrenInto(ScheduleNode& target) const;

 private:
  NodeKind kind_;
  std::vector<NodePtr> children_;
};

class DomainNode final : public ScheduleNode {
 public:
  DomainNode() : ScheduleNode(NodeKind::kDomain) {}
  std::vector<poly::IntegerSet> domains;

  [[nodiscard]] NodePtr clone() const override;
};

/// One dimension of a band.
struct BandMember {
  /// Loop variable the code generator introduces for this member
  /// (e.g. "mt", "nt", "ko", "ki", "b").  Unique within the tree.
  std::string var;
  /// Per-statement schedule expression over original iteration dims,
  /// e.g. S1 -> floor(k/32) - 8*floor(k/256).  Kept for printing and
  /// validation; keyed by statement name.
  std::vector<std::pair<std::string, poly::AffineExpr>> exprs;
  /// Symbolic trip count (loops run [0, extent)).
  Extent extent;
  /// If set, the member is bound to a mesh coordinate instead of a loop
  /// ("Rid" or "Cid"), as in Fig.4b.
  std::optional<std::string> binding;
  /// isl's "coincident" attribute: iterations are parallel.
  bool coincident = false;
};

class BandNode final : public ScheduleNode {
 public:
  BandNode() : ScheduleNode(NodeKind::kBand) {}
  std::vector<BandMember> members;
  bool permutable = false;

  [[nodiscard]] NodePtr clone() const override;
};

class SequenceNode final : public ScheduleNode {
 public:
  SequenceNode() : ScheduleNode(NodeKind::kSequence) {}
  [[nodiscard]] NodePtr clone() const override;
};

struct FilterElement {
  enum class Kind {
    kStatement,  // a user statement from the domain (e.g. "S1")
    kCopy,       // a CopyStmt from an enclosing extension, by name
    kReplyWait,  // wait on a reply slot
    kSync,       // CPE-mesh synchronisation (required before RMA, §5)
  };
  Kind kind = Kind::kStatement;
  std::string name;        // statement / copy name / reply slot
  std::int64_t count = 1;  // wait count for kReplyWait
};

/// Range restriction used by loop peeling (§6.2): constrains variable `var`
/// to [begin, end).  When begin + 1 == end the code generator binds the
/// variable without emitting a loop (the isolated first/last iterations of
/// Fig.11).  `end` may be offset from the owning band's extent.
struct RangeRestriction {
  std::string var;
  Extent begin;
  Extent end;
};

class FilterNode final : public ScheduleNode {
 public:
  FilterNode() : ScheduleNode(NodeKind::kFilter) {}
  std::vector<FilterElement> elements;
  std::optional<RangeRestriction> range;

  [[nodiscard]] bool selectsStatement(const std::string& name) const;
  [[nodiscard]] NodePtr clone() const override;
};

class ExtensionNode final : public ScheduleNode {
 public:
  ExtensionNode() : ScheduleNode(NodeKind::kExtension) {}
  std::vector<CopyStmt> copies;

  [[nodiscard]] const CopyStmt* findCopy(const std::string& name) const;
  [[nodiscard]] NodePtr clone() const override;
};

class MarkNode final : public ScheduleNode {
 public:
  MarkNode() : ScheduleNode(NodeKind::kMark) {}
  std::string label;
  /// Exactly one of these is set for code-generating marks; plain marks
  /// (e.g. the "skipped" bypass of Fig.12a) set neither.
  std::optional<ComputeMarkInfo> compute;
  std::optional<ElementwiseMarkInfo> elementwise;

  [[nodiscard]] NodePtr clone() const override;
};

class LeafNode final : public ScheduleNode {
 public:
  LeafNode() : ScheduleNode(NodeKind::kLeaf) {}
  [[nodiscard]] NodePtr clone() const override;
};

/// A whole schedule tree (owns the root, which must be a DomainNode).
class ScheduleTree {
 public:
  explicit ScheduleTree(NodePtr root);

  [[nodiscard]] DomainNode& root();
  [[nodiscard]] const DomainNode& root() const;

  [[nodiscard]] ScheduleTree clone() const;

  /// Render in the paper's textual style (Fig.2/4/6/9/11); used by golden
  /// tests and the --dump-schedule option.
  [[nodiscard]] std::string toString() const;

  /// Check structural invariants; throws InternalError with a diagnostic on
  /// violation.  Called between pipeline passes.
  void validate() const;

 private:
  NodePtr root_;
};

/// Downcast helpers (checked).
template <typename T>
T& nodeCast(ScheduleNode& node) {
  T* p = dynamic_cast<T*>(&node);
  if (p == nullptr) throw std::logic_error("schedule node kind mismatch");
  return *p;
}
template <typename T>
const T& nodeCast(const ScheduleNode& node) {
  const T* p = dynamic_cast<const T*>(&node);
  if (p == nullptr) throw std::logic_error("schedule node kind mismatch");
  return *p;
}

}  // namespace sw::sched
