// Symbolic loop extents.
//
// After tiling, every loop the code generator emits has an extent of the
// form  constant + ceil(param/divisor)  (e.g. 8, 64, ceil(M/512),
// ceil(K/256)).  For the paper's padded shapes (§8.1) the division is
// exact; for arbitrary shapes the ceiling admits a final partial tile,
// whose DMA/compute extents are clamped at runtime by the edge-tile path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace sw::sched {

class Extent {
 public:
  Extent() = default;

  static Extent constant(std::int64_t value) {
    Extent e;
    e.constant_ = value;
    return e;
  }
  /// ceil(param / divisor); exact when the parameter is a multiple.
  static Extent paramDiv(std::string param, std::int64_t divisor) {
    Extent e;
    e.param_ = std::move(param);
    e.divisor_ = divisor;
    return e;
  }

  [[nodiscard]] bool isConstant() const { return !param_.has_value(); }
  [[nodiscard]] std::int64_t constantPart() const { return constant_; }
  [[nodiscard]] const std::optional<std::string>& param() const {
    return param_;
  }
  [[nodiscard]] std::int64_t divisor() const { return divisor_; }

  [[nodiscard]] Extent plus(std::int64_t delta) const {
    Extent e = *this;
    e.constant_ += delta;
    return e;
  }

  [[nodiscard]] std::int64_t evaluate(
      const std::map<std::string, std::int64_t>& params) const;

  [[nodiscard]] std::string toString() const;

  bool operator==(const Extent&) const = default;

 private:
  std::int64_t constant_ = 0;
  std::optional<std::string> param_;
  std::int64_t divisor_ = 1;
};

}  // namespace sw::sched
