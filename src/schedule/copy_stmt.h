// Data-movement statements introduced into schedule trees by extension
// nodes (§4, §5 of the paper).
//
// A CopyStmt is the compiler-internal description of one athread
// communication call plus its reply bookkeeping.  The address arguments are
// kept symbolic: affine expressions over the *schedule dimensions* (mt, nt,
// Rid, Cid, ko, ki, b) and the structure parameters (M, N, K, B), exactly
// the information the paper derives from the affine relation attached to
// the extension node (its Eq. (1)).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "poly/affine.h"

namespace sw::sched {

/// Which communication primitive the statement lowers to.
enum class CopyKind {
  kDmaGet,        // main memory -> SPM
  kDmaPut,        // SPM -> main memory
  kRmaRowBcast,   // sender's SPM -> every CPE in the same mesh row
  kRmaColBcast,   // sender's SPM -> every CPE in the same mesh column
};

/// Identifies one of the nine SPM buffers of §6.3.  Double-buffered arrays
/// use `phase` to alternate; the runtime resolves (set, phase) to a concrete
/// SPM address.
struct SpmBufferRef {
  std::string set;  // "C", "A_dma", "B_dma", "A_rma", "B_rma"
  /// Parity selector over a schedule variable: buffer index =
  /// (phaseVar + phaseOffset) mod 2 when double-buffered, else 0.
  std::optional<std::string> phaseVar;
  std::int64_t phaseOffset = 0;
};

/// Condition guarding execution to one sender per row/column, e.g.
/// Cid == ki.  Empty var means unconditional.
struct SenderGuard {
  std::string meshVar;       // "Rid" or "Cid"
  poly::AffineExpr equals;   // expression over schedule vars
};

struct CopyStmt {
  std::string name;  // e.g. "getA", "putC", "rbcastA" — used in printing
  CopyKind kind = CopyKind::kDmaGet;

  std::string array;  // global array name ("A", "B", "C")
  SpmBufferRef buffer;

  // --- main-memory coordinates (DMA only); see Eq. (1) ---
  /// Optional leading batch subscript.
  std::optional<poly::AffineExpr> batchIndex;
  poly::AffineExpr rowStart;  // r in Mat[r][c]
  poly::AffineExpr colStart;  // c in Mat[r][c]
  /// Names of the parameters giving the global matrix shape X x Y
  /// ("M","K" for A; "K","N" for B; "M","N" for C).
  std::string rowsParam;
  std::string colsParam;

  // --- tile shape: X_tau x Y_tau ---
  std::int64_t tileRows = 0;
  std::int64_t tileCols = 0;

  /// Schedule variable whose value (modulo the mesh width) selects the
  /// sending CPE for RMA broadcasts; unset for DMA.
  std::optional<SenderGuard> senderGuard;

  /// RMA only: the sender-side SPM buffer the broadcast reads from (the
  /// DMA-staged tile); `buffer` above is the receive buffer on every CPE.
  SpmBufferRef rmaSource;

  /// Reply slot this operation signals.  Wait statements reference the same
  /// slot name.
  std::string replySlot;

  /// Edge-tile mode (DMA only): clamp the transferred extent at runtime to
  /// min(tile, bound - offset) per dimension, where the bounds are the
  /// `rowsParam`/`colsParam` parameters.  The SPM destination keeps the
  /// full-tile row stride so in-SPM consumers (transpose, scaling, the
  /// micro-kernel) see an unchanged layout; a fully out-of-range tile
  /// degenerates to a zero-byte transfer that still signals its reply slot.
  bool clampToBounds = false;

  [[nodiscard]] std::int64_t sizeElements() const {
    return tileRows * tileCols;
  }
};

/// A reply-wait statement (dma_wait_value / rma_wait_value); separated from
/// the issuing statement so loop peeling can move it (§6.2: the ⊕ filters).
struct ReplyWaitStmt {
  std::string replySlot;
  /// Number of completions to wait for (RMA senders wait on both replys and
  /// replyr; modeled as separate slots).
  std::int64_t count = 1;
};

/// Edge-tile clamp for one compute dimension: the effective extent is
/// min(tile, P[boundParam] - origin) evaluated at runtime; non-positive
/// values skip the kernel call entirely (empty remainder tile).
struct ComputeClamp {
  poly::AffineExpr origin;  // global start index of this dimension's tile
  std::string boundParam;   // "M", "N", or "K"
};

/// Payload of the mark node that replaces the innermost point band with a
/// compute kernel (§7.2).  kAsm invokes the vendor-style micro-kernel,
/// kNaive the straightforward loop nest (--no-use-asm).
struct ComputeMarkInfo {
  enum class Kind { kAsm, kNaive };
  Kind kind = Kind::kAsm;
  SpmBufferRef a;  // left operand tile in SPM
  SpmBufferRef b;  // right operand tile in SPM
  SpmBufferRef c;  // accumulator tile in SPM
  std::int64_t m = 64, n = 64, k = 32;  // tile shape contract
  /// Register-block shape of the generated micro-kernel variant serving
  /// this compute (kAsm only; ignored for kNaive).  The default (4, 8) is
  /// the vendor routine's block.
  int mr = 4;
  int nr = 8;
  /// Edge-tile mode: runtime clamps per dimension.  When every effective
  /// extent equals the full tile the asm contract kernel runs unchanged;
  /// any partial extent dispatches to the strided edge kernel (the SPM
  /// tiles keep full-tile strides).
  std::optional<ComputeClamp> clampM;
  std::optional<ComputeClamp> clampN;
  std::optional<ComputeClamp> clampK;
};

/// Payload of a mark node performing an element-wise operation over an SPM
/// tile (alpha/beta handling and the fusion patterns of §7.3).
struct ElementwiseMarkInfo {
  enum class Op {
    kBetaScaleC,  // local_C *= beta          (epilogue of the C DMA get)
    kAlphaScaleA, // local_A *= alpha         (before broadcast)
    kQuantize,    // fused prologue: quantization of the A tile
    kRelu,        // fused epilogue: activation of the C tile
    kTranspose,   // SPM-to-SPM tile transpose (op(A)/op(B) GEMM variants)
  };
  Op op = Op::kBetaScaleC;
  SpmBufferRef target;
  /// For kTranspose: `rows` x `cols` describe the SOURCE tile; the target
  /// receives the cols x rows transpose.  Otherwise the target tile shape.
  std::int64_t rows = 0, cols = 0;
  /// kTranspose only: the staging buffer the DMA landed the tile in.
  std::optional<SpmBufferRef> source;
  /// The user statement this mark implements, if any (for provenance).
  std::string statement;
};

}  // namespace sw::sched
