// Generic schedule-tree transformations (§3 of the paper): loop tiling,
// strip-mining, band splitting, hardware binding, and structural helpers
// used by the DMA/RMA insertion and latency-hiding passes.
//
// All transformations operate in place on a BandNode reached inside a
// ScheduleTree and preserve tree invariants (validate() still passes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "schedule/tree.h"

namespace sw::sched {

/// Build the initial tree of Fig.2b: Domain -> Band(identity) -> Leaf.
/// `coincident[i]` marks parallel dimensions (isl's attribute from the
/// dependence analysis); `permutable` is the tilability attribute.
ScheduleTree buildInitialTree(std::vector<poly::IntegerSet> domains,
                              const std::vector<bool>& coincident,
                              bool permutable);

/// Tile every member of `band` rectangularly with `sizes` (Fig.4a).  The
/// band is replaced by two bands: the outer iterates between tiles
/// (expr -> floor(expr/size), variable names `outerVars`), the inner within
/// a tile (expr -> expr - size*floor(expr/size), names `innerVars`).
/// Extents of the outer members divide the original extents by the sizes;
/// inner extents are the sizes themselves.  Returns the outer band.
BandNode& tileBand(ScheduleTree& tree, BandNode& band,
                   const std::vector<std::int64_t>& sizes,
                   const std::vector<std::string>& outerVars,
                   const std::vector<std::string>& innerVars);

/// Strip-mine member `index` of `band` by `factor` (Fig.6): the member is
/// replaced by an outer member (var `outerVar`, expr floor(e/factor),
/// extent extent/factor) in a new band above, and the residue
/// (var `innerVar`, expr e - factor*floor(e/factor), extent factor) stays.
/// Non-divisible extents round up (ceiling division): the final partial
/// strip is emitted as an edge tile whose transfers and compute are clamped
/// at runtime.  Returns the new outer band.
BandNode& stripMineMember(ScheduleTree& tree, BandNode& band,
                          std::size_t index, std::int64_t factor,
                          const std::string& outerVar,
                          const std::string& innerVar);

/// Split `band` after `count` members: the first `count` members stay, the
/// rest move to a fresh band inserted as the only child (isolation step of
/// Fig.3/Fig.6).  Returns the new inner band.
BandNode& splitBand(ScheduleTree& tree, BandNode& band, std::size_t count);

/// Bind member `index` of `band` to the mesh coordinate `binding`
/// ("Rid"/"Cid", Fig.4b).  The member's extent must equal the mesh width.
void bindMember(BandNode& band, std::size_t index, const std::string& binding);

/// Find the unique band in the tree whose first member has variable `var`;
/// throws if absent.
BandNode& findBandByVar(ScheduleTree& tree, const std::string& var);

/// Wrap the only child of `parent` in a new node `wrapper` (wrapper adopts
/// the child; parent adopts wrapper).  Returns the wrapper.
ScheduleNode& wrapOnlyChild(ScheduleNode& parent, NodePtr wrapper);

/// Convenience: make a filter node with the given elements and optional
/// range, adopting `child` (may be null for issue-only filters, which get a
/// leaf).
NodePtr makeFilter(std::vector<FilterElement> elements,
                   std::optional<RangeRestriction> range, NodePtr child);

FilterElement statementElement(std::string name);
FilterElement copyElement(std::string name);
FilterElement waitElement(std::string replySlot, std::int64_t count = 1);
FilterElement syncElement();

}  // namespace sw::sched
