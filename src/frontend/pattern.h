// Semantic analysis and GEMM pattern recognition (§2.3).
//
// The analyzer extracts the polyhedral representation (statement domains
// and access relations) from the parsed function, proves the required
// parallelism/tilability with the dependence analysis — the role isl plays
// in the paper — and classifies the program as plain, batched, or fused
// (prologue quantization / epilogue activation) DGEMM.
#pragma once

#include <string>

#include "frontend/ast.h"
#include "poly/dependence.h"

namespace sw::frontend {

enum class FusionPattern { kNone, kPrologueQuantize, kEpilogueRelu };

struct GemmPatternInfo {
  std::string functionName;

  bool batched = false;
  FusionPattern fusion = FusionPattern::kNone;
  /// Operand layout variants: A[k][i] / B[j][k] in the source select the
  /// transposed GEMM forms.
  bool transposeA = false;
  bool transposeB = false;

  /// User-visible array names, mapped to the canonical roles.  `arrayA` is
  /// the DMA source (for fused prologues: the original, pre-quantization
  /// array, which the generated code re-reads and re-quantizes per tile —
  /// the recomputation of Fig.12a).
  std::string arrayA;
  std::string arrayB;
  std::string arrayC;

  /// Structure parameter names as the user wrote them.
  std::string paramM, paramN, paramK, paramBatch;

  /// Scalar coefficient variables, if present in the source.
  std::string alphaVar;
  std::string betaVar;
  /// True when the source carries an explicit beta-scaling nest
  /// (C[i][j] = beta * C[i][j]) before the accumulation.
  bool hasBetaScale = false;

  /// The extracted polyhedral statements (for inspection and tests).
  std::vector<poly::StatementInfo> statements;
};

/// Parse + analyse + classify.  Throws InputError with a diagnostic when
/// the program is not an accepted GEMM form or fails the dependence checks.
GemmPatternInfo analyzeGemmSource(const std::string& source);

/// Analysis of an already-parsed function (exposed for tests).
GemmPatternInfo analyzeGemmFunction(const FunctionDecl& function);

}  // namespace sw::frontend
