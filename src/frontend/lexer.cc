#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>

#include "support/error.h"
#include "support/format.h"

namespace sw::frontend {

namespace {

struct Cursor {
  const std::string& source;
  std::size_t pos = 0;
  int line = 1;
  int column = 1;

  [[nodiscard]] bool done() const { return pos >= source.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos + ahead < source.size() ? source[pos + ahead] : '\0';
  }
  char advance() {
    char c = source[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  }
};

void skipWhitespaceAndComments(Cursor& cur) {
  while (!cur.done()) {
    char c = cur.peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
    } else if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
    } else if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/'))
        cur.advance();
      if (cur.done())
        throwInput(strCat("unterminated block comment at line ", cur.line));
      cur.advance();
      cur.advance();
    } else {
      break;
    }
  }
}

TokenKind keywordKind(const std::string& word) {
  if (word == "void") return TokenKind::kVoid;
  if (word == "long") return TokenKind::kLong;
  if (word == "int") return TokenKind::kInt;
  if (word == "double") return TokenKind::kDouble;
  if (word == "for") return TokenKind::kFor;
  return TokenKind::kIdentifier;
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  Cursor cur{source};
  std::vector<Token> tokens;
  while (true) {
    skipWhitespaceAndComments(cur);
    Token token;
    token.line = cur.line;
    token.column = cur.column;
    if (cur.done()) {
      token.kind = TokenKind::kEnd;
      tokens.push_back(token);
      return tokens;
    }
    char c = cur.peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (!cur.done() &&
             (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
              cur.peek() == '_'))
        word.push_back(cur.advance());
      token.kind = keywordKind(word);
      token.text = word;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      std::string number;
      while (!cur.done() &&
             (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
              cur.peek() == '.' || cur.peek() == 'e' || cur.peek() == 'E' ||
              ((cur.peek() == '+' || cur.peek() == '-') && !number.empty() &&
               (number.back() == 'e' || number.back() == 'E'))))
        number.push_back(cur.advance());
      token.kind = TokenKind::kNumber;
      token.text = number;
      token.numberValue = std::strtod(number.c_str(), nullptr);
    } else {
      cur.advance();
      switch (c) {
        case '(': token.kind = TokenKind::kLParen; break;
        case ')': token.kind = TokenKind::kRParen; break;
        case '{': token.kind = TokenKind::kLBrace; break;
        case '}': token.kind = TokenKind::kRBrace; break;
        case '[': token.kind = TokenKind::kLBracket; break;
        case ']': token.kind = TokenKind::kRBracket; break;
        case ';': token.kind = TokenKind::kSemicolon; break;
        case ',': token.kind = TokenKind::kComma; break;
        case '+':
          if (cur.peek() == '+') {
            cur.advance();
            token.kind = TokenKind::kPlusPlus;
          } else if (cur.peek() == '=') {
            cur.advance();
            token.kind = TokenKind::kPlusAssign;
          } else {
            token.kind = TokenKind::kPlus;
          }
          break;
        case '=': token.kind = TokenKind::kAssign; break;
        case '-': token.kind = TokenKind::kMinus; break;
        case '*':
          if (cur.peek() == '=') {
            cur.advance();
            token.kind = TokenKind::kStarAssign;
          } else {
            token.kind = TokenKind::kStar;
          }
          break;
        case '/': token.kind = TokenKind::kSlash; break;
        case '<':
          if (cur.peek() == '=') {
            cur.advance();
            token.kind = TokenKind::kLessEqual;
          } else {
            token.kind = TokenKind::kLess;
          }
          break;
        default:
          throwInput(strCat("unexpected character '", std::string(1, c),
                            "' at line ", token.line, ", column ",
                            token.column));
      }
      token.text = std::string(1, c);
    }
    tokens.push_back(token);
  }
}

const char* tokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kVoid: return "'void'";
    case TokenKind::kLong: return "'long'";
    case TokenKind::kInt: return "'int'";
    case TokenKind::kDouble: return "'double'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEqual: return "'<='";
  }
  return "?";
}

}  // namespace sw::frontend
