// Lexer for the naive-C input language (§2.3): the user writes a plain
// 3D (or 4D batched) loop nest; the compiler does the rest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sw::frontend {

enum class TokenKind {
  kEnd,
  kIdentifier,
  kNumber,
  // keywords
  kVoid,
  kLong,
  kInt,
  kDouble,
  kFor,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemicolon,
  kComma,
  kAssign,      // =
  kPlusAssign,  // +=
  kStarAssign,  // *=
  kPlusPlus,    // ++
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLess,
  kLessEqual,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double numberValue = 0.0;
  int line = 1;
  int column = 1;
};

/// Tokenise `source`; throws InputError on unknown characters.  Line ('//')
/// and block comments are skipped.
std::vector<Token> tokenize(const std::string& source);

/// Human-readable token-kind name for diagnostics.
const char* tokenKindName(TokenKind kind);

}  // namespace sw::frontend
