// Abstract syntax tree of the C subset the frontend accepts: one function
// whose body is a nest of counted `for` loops around assignments over
// VLA-style array parameters (the Fig.2a/Fig.12 input programs).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace sw::frontend {

// --- expressions -----------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind { kNumber, kVariable, kArrayRef, kBinary, kCall };
enum class BinaryOp { kAdd, kSub, kMul, kDiv };

struct Expr {
  ExprKind kind = ExprKind::kNumber;

  // kNumber
  double number = 0.0;
  // kVariable / kCall (callee) / kArrayRef (array name)
  std::string name;
  // kArrayRef: one expression per subscript; kCall: arguments
  std::vector<ExprPtr> args;
  // kBinary
  BinaryOp op = BinaryOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;

  [[nodiscard]] ExprPtr clone() const;
};

// --- statements -------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind { kFor, kAssign, kBlock };

struct Stmt {
  StmtKind kind = StmtKind::kBlock;

  // kFor: for (long var = 0; var < bound; var++) body
  std::string loopVar;
  ExprPtr loopBound;  // exclusive upper bound
  StmtPtr body;

  // kAssign: target = value (+= desugared to target = target + value)
  ExprPtr target;  // must be an array reference
  ExprPtr value;

  // kBlock
  std::vector<StmtPtr> stmts;
};

// --- declarations -----------------------------------------------------------

struct ParamDecl {
  enum class Type { kLong, kDouble, kDoubleArray };
  Type type = Type::kLong;
  std::string name;
  /// For kDoubleArray: the dimension expressions, e.g. {M, K}.  Each must
  /// be a parameter name.
  std::vector<std::string> dims;
};

struct FunctionDecl {
  std::string name;
  std::vector<ParamDecl> params;
  StmtPtr body;
};

}  // namespace sw::frontend
