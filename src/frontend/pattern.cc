#include "frontend/pattern.h"

#include <algorithm>
#include <map>
#include <set>

#include "frontend/parser.h"
#include "support/error.h"
#include "support/format.h"

namespace sw::frontend {

namespace {

using poly::AffineExpr;

struct LoopLevel {
  std::string var;
  std::string boundParam;  // loop bound must be a structure parameter
};

/// One assignment statement together with its enclosing loops, in source
/// order.
struct NestedStmt {
  std::vector<LoopLevel> loops;
  const Stmt* assign = nullptr;
};

void collectStmts(const Stmt& stmt, std::vector<LoopLevel>& loops,
                  std::vector<NestedStmt>& out) {
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const StmtPtr& s : stmt.stmts) collectStmts(*s, loops, out);
      break;
    case StmtKind::kFor: {
      if (stmt.loopBound->kind != ExprKind::kVariable)
        throwInput(strCat("loop bound of '", stmt.loopVar,
                          "' must be a size parameter"));
      loops.push_back(LoopLevel{stmt.loopVar, stmt.loopBound->name});
      collectStmts(*stmt.body, loops, out);
      loops.pop_back();
      break;
    }
    case StmtKind::kAssign:
      out.push_back(NestedStmt{loops, &stmt});
      break;
  }
}

/// Convert a subscript expression to an affine expression over loop vars
/// and parameters.
AffineExpr toAffine(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kNumber: {
      const double v = expr.number;
      if (v != static_cast<double>(static_cast<std::int64_t>(v)))
        throwInput("array subscripts must be integers");
      return AffineExpr::constant(static_cast<std::int64_t>(v));
    }
    case ExprKind::kVariable:
      return AffineExpr::dim(expr.name);
    case ExprKind::kBinary: {
      if (expr.op == BinaryOp::kAdd)
        return toAffine(*expr.lhs) + toAffine(*expr.rhs);
      if (expr.op == BinaryOp::kSub)
        return toAffine(*expr.lhs) - toAffine(*expr.rhs);
      if (expr.op == BinaryOp::kMul) {
        // One side must be a constant.
        if (expr.lhs->kind == ExprKind::kNumber)
          return toAffine(*expr.rhs) *
                 static_cast<std::int64_t>(expr.lhs->number);
        if (expr.rhs->kind == ExprKind::kNumber)
          return toAffine(*expr.lhs) *
                 static_cast<std::int64_t>(expr.rhs->number);
      }
      throwInput("array subscripts must be affine in the loop variables");
    }
    default:
      throwInput("array subscripts must be affine in the loop variables");
  }
}

/// Gather every array reference in an expression (for access relations).
void collectArrayRefs(const Expr& expr, std::vector<const Expr*>& out) {
  if (expr.kind == ExprKind::kArrayRef) out.push_back(&expr);
  for (const ExprPtr& a : expr.args) collectArrayRefs(*a, out);
  if (expr.lhs) collectArrayRefs(*expr.lhs, out);
  if (expr.rhs) collectArrayRefs(*expr.rhs, out);
}

/// Flatten nested additions into a term list.
void flattenSum(const Expr& expr, std::vector<const Expr*>& terms) {
  if (expr.kind == ExprKind::kBinary && expr.op == BinaryOp::kAdd) {
    flattenSum(*expr.lhs, terms);
    flattenSum(*expr.rhs, terms);
    return;
  }
  terms.push_back(&expr);
}

/// Flatten nested multiplications into a factor list.
void flattenProduct(const Expr& expr, std::vector<const Expr*>& factors) {
  if (expr.kind == ExprKind::kBinary && expr.op == BinaryOp::kMul) {
    flattenProduct(*expr.lhs, factors);
    flattenProduct(*expr.rhs, factors);
    return;
  }
  factors.push_back(&expr);
}

/// True when two array refs are structurally identical.
bool sameRef(const Expr& a, const Expr& b) {
  if (a.kind != ExprKind::kArrayRef || b.kind != ExprKind::kArrayRef)
    return false;
  if (a.name != b.name || a.args.size() != b.args.size()) return false;
  for (std::size_t i = 0; i < a.args.size(); ++i)
    if (!(toAffine(*a.args[i]) == toAffine(*b.args[i]))) return false;
  return true;
}

/// True when the reference's subscripts are exactly the given loop vars.
bool refIs(const Expr& ref, const std::vector<std::string>& vars) {
  if (ref.kind != ExprKind::kArrayRef || ref.args.size() != vars.size())
    return false;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (ref.args[i]->kind != ExprKind::kVariable ||
        ref.args[i]->name != vars[i])
      return false;
  }
  return true;
}

/// Build a poly statement from a nested assignment.
poly::StatementInfo buildStatement(const NestedStmt& nested,
                                   const std::string& name) {
  std::vector<std::string> dims;
  for (const LoopLevel& l : nested.loops) dims.push_back(l.var);
  poly::IntegerSet domain(name, dims);
  for (const LoopLevel& l : nested.loops)
    domain.addRange(l.var, AffineExpr::dim(l.boundParam));

  poly::StatementInfo info{name, domain, {}};
  auto addAccess = [&](const Expr& ref, bool write) {
    std::vector<AffineExpr> subs;
    for (const ExprPtr& s : ref.args) subs.push_back(toAffine(*s));
    info.accesses.push_back(
        poly::AccessRelation{ref.name, poly::AffineMap(dims, subs), write});
  };
  addAccess(*nested.assign->target, /*write=*/true);
  std::vector<const Expr*> reads;
  collectArrayRefs(*nested.assign->value, reads);
  for (const Expr* r : reads) addAccess(*r, /*write=*/false);
  return info;
}

/// Recognised element-wise intrinsic calls.
bool isQuantizeCall(const Expr& expr) {
  return expr.kind == ExprKind::kCall && expr.name == "quantize" &&
         expr.args.size() == 1;
}
bool isReluCall(const Expr& expr) {
  if (expr.kind == ExprKind::kCall && expr.name == "relu" &&
      expr.args.size() == 1)
    return true;
  // fmax(x, 0.0)
  return expr.kind == ExprKind::kCall && expr.name == "fmax" &&
         expr.args.size() == 2 &&
         expr.args[1]->kind == ExprKind::kNumber &&
         expr.args[1]->number == 0.0;
}

}  // namespace

GemmPatternInfo analyzeGemmFunction(const FunctionDecl& function) {
  GemmPatternInfo info;
  info.functionName = function.name;

  std::set<std::string> sizeParams;
  std::set<std::string> scalarParams;
  std::map<std::string, std::vector<std::string>> arrayDims;
  for (const ParamDecl& p : function.params) {
    switch (p.type) {
      case ParamDecl::Type::kLong:
        sizeParams.insert(p.name);
        break;
      case ParamDecl::Type::kDouble:
        scalarParams.insert(p.name);
        break;
      case ParamDecl::Type::kDoubleArray:
        arrayDims[p.name] = p.dims;
        break;
    }
  }

  std::vector<NestedStmt> stmts;
  std::vector<LoopLevel> loops;
  collectStmts(*function.body, loops, stmts);
  if (stmts.empty()) throwInput("the function body contains no statement");

  // --- locate the GEMM accumulation statement ---------------------------
  std::size_t gemmIndex = stmts.size();
  for (std::size_t s = 0; s < stmts.size(); ++s) {
    const NestedStmt& nested = stmts[s];
    if (nested.loops.size() != 3 && nested.loops.size() != 4) continue;
    const bool batched = nested.loops.size() == 4;
    const std::size_t base = batched ? 1 : 0;
    const std::string& iVar = nested.loops[base + 0].var;
    const std::string& jVar = nested.loops[base + 1].var;
    const std::string& kVar = nested.loops[base + 2].var;
    std::vector<std::string> cSubs;
    if (batched) cSubs.push_back(nested.loops[0].var);
    cSubs.insert(cSubs.end(), {iVar, jVar});
    if (!refIs(*nested.assign->target, cSubs)) continue;

    std::vector<const Expr*> terms;
    flattenSum(*nested.assign->value, terms);
    if (terms.size() != 2) continue;
    // One term is C itself, the other the (scaled) product.
    const Expr* cTerm = nullptr;
    const Expr* product = nullptr;
    for (const Expr* t : terms) {
      if (sameRef(*t, *nested.assign->target))
        cTerm = t;
      else
        product = t;
    }
    if (cTerm == nullptr || product == nullptr) continue;

    std::vector<const Expr*> factors;
    flattenProduct(*product, factors);
    const Expr* aRef = nullptr;
    const Expr* bRef = nullptr;
    bool aTransposed = false;
    bool bTransposed = false;
    std::string alphaVar;
    bool malformed = false;
    auto withBatch = [&](std::initializer_list<std::string> subs) {
      std::vector<std::string> result;
      if (batched) result.push_back(nested.loops[0].var);
      result.insert(result.end(), subs);
      return result;
    };
    const auto aSubs = withBatch({iVar, kVar});
    const auto aSubsT = withBatch({kVar, iVar});
    const auto bSubs = withBatch({kVar, jVar});
    const auto bSubsT = withBatch({jVar, kVar});
    for (const Expr* f : factors) {
      if (aRef == nullptr && (refIs(*f, aSubs) || refIs(*f, aSubsT))) {
        aRef = f;
        aTransposed = refIs(*f, aSubsT);
      } else if (bRef == nullptr &&
                 (refIs(*f, bSubs) || refIs(*f, bSubsT))) {
        bRef = f;
        bTransposed = refIs(*f, bSubsT);
      } else if (f->kind == ExprKind::kVariable &&
                 scalarParams.count(f->name) != 0 && alphaVar.empty()) {
        alphaVar = f->name;
      } else {
        malformed = true;
      }
    }
    if (malformed || aRef == nullptr || bRef == nullptr) continue;
    // A[k][i]*B[k][j] is ambiguous with A'[i][k]*B'[k][j] only when i == k
    // extents collide; the subscript match above is exact, so accept.
    info.transposeA = aTransposed;
    info.transposeB = bTransposed;

    info.batched = batched;
    info.arrayA = aRef->name;
    info.arrayB = bRef->name;
    info.arrayC = nested.assign->target->name;
    info.alphaVar = alphaVar;
    if (batched) info.paramBatch = nested.loops[0].boundParam;
    info.paramM = nested.loops[base + 0].boundParam;
    info.paramN = nested.loops[base + 1].boundParam;
    info.paramK = nested.loops[base + 2].boundParam;
    gemmIndex = s;
    break;
  }
  if (gemmIndex == stmts.size())
    throwInput(
        "no GEMM accumulation statement of the form "
        "C[i][j] = C[i][j] + [alpha *] A[i][k] * B[k][j] was found");

  // --- classify the remaining statements --------------------------------
  const std::size_t expectedEwDepth = info.batched ? 3u : 2u;
  for (std::size_t s = 0; s < stmts.size(); ++s) {
    if (s == gemmIndex) continue;
    const NestedStmt& nested = stmts[s];
    const Expr& target = *nested.assign->target;
    const Expr& value = *nested.assign->value;
    if (nested.loops.size() != expectedEwDepth)
      throwInput(strCat("unsupported statement around the GEMM nest "
                        "(expected a ",
                        expectedEwDepth, "-deep element-wise nest)"));

    // Beta scaling: C[i][j] = beta * C[i][j].
    if (s < gemmIndex && target.name == info.arrayC) {
      std::vector<const Expr*> factors;
      flattenProduct(value, factors);
      const Expr* cRef = nullptr;
      std::string betaVar;
      bool ok = factors.size() == 2;
      for (const Expr* f : ok ? factors : std::vector<const Expr*>{}) {
        if (sameRef(*f, target))
          cRef = f;
        else if (f->kind == ExprKind::kVariable &&
                 scalarParams.count(f->name) != 0)
          betaVar = f->name;
      }
      if (cRef == nullptr || betaVar.empty())
        throwInput("unsupported statement writing the output matrix before "
                    "the GEMM nest (expected C[i][j] = beta * C[i][j])");
      info.betaVar = betaVar;
      info.hasBetaScale = true;
      continue;
    }

    // Fused prologue: AQ[i][k] = quantize(SRC[i][k]) before the GEMM,
    // where the GEMM reads AQ.
    if (s < gemmIndex && target.name == info.arrayA &&
        isQuantizeCall(value) &&
        value.args[0]->kind == ExprKind::kArrayRef) {
      info.fusion = FusionPattern::kPrologueQuantize;
      info.arrayA = value.args[0]->name;  // DMA re-reads the original array
      continue;
    }

    // Fused epilogue: C[i][j] = relu(C[i][j]) after the GEMM.
    if (s > gemmIndex && target.name == info.arrayC && isReluCall(value) &&
        value.args[0]->kind == ExprKind::kArrayRef &&
        sameRef(*value.args[0], target)) {
      info.fusion = FusionPattern::kEpilogueRelu;
      continue;
    }

    throwInput(strCat("statement ", s,
                      " does not match any supported GEMM / fusion form"));
  }

  // --- sanity-check declared array shapes --------------------------------
  auto checkDims = [&](const std::string& array,
                       std::vector<std::string> expect) {
    auto it = arrayDims.find(array);
    if (it == arrayDims.end()) return;  // undeclared (pointer style): skip
    if (info.batched) expect.insert(expect.begin(), info.paramBatch);
    if (it->second != expect)
      throwInput(strCat("array '", array,
                        "' is declared with dimensions inconsistent with "
                        "its GEMM role"));
  };
  if (info.transposeB)
    checkDims(info.arrayB, {info.paramN, info.paramK});
  else
    checkDims(info.arrayB, {info.paramK, info.paramN});
  checkDims(info.arrayC, {info.paramM, info.paramN});
  if (info.fusion != FusionPattern::kPrologueQuantize) {
    if (info.transposeA)
      checkDims(info.arrayA, {info.paramK, info.paramM});
    else
      checkDims(info.arrayA, {info.paramM, info.paramK});
  }

  // --- dependence validation (the isl step of §2.2) ----------------------
  std::size_t counter = 0;
  std::string gemmStmtName;
  for (std::size_t s = 0; s < stmts.size(); ++s) {
    std::string name = strCat("S", counter++);
    if (s == gemmIndex) gemmStmtName = name;
    info.statements.push_back(buildStatement(stmts[s], name));
  }
  poly::DependenceAnalysis analysis(info.statements);
  const std::size_t base = info.batched ? 1 : 0;
  if (!analysis.isLoopParallel(gemmStmtName, base + 0) ||
      !analysis.isLoopParallel(gemmStmtName, base + 1))
    throwInput("the GEMM nest's outer loops are not parallel");
  if (!analysis.isBandPermutable(gemmStmtName, 0, base + 3))
    throwInput("the GEMM nest is not tilable");

  return info;
}

GemmPatternInfo analyzeGemmSource(const std::string& source) {
  return analyzeGemmFunction(parseFunction(source));
}

}  // namespace sw::frontend
