#include "frontend/parser.h"

#include "frontend/lexer.h"
#include "support/error.h"
#include "support/format.h"

namespace sw::frontend {

ExprPtr Expr::clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->number = number;
  copy->name = name;
  copy->op = op;
  for (const ExprPtr& a : args) copy->args.push_back(a->clone());
  if (lhs) copy->lhs = lhs->clone();
  if (rhs) copy->rhs = rhs->clone();
  return copy;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  FunctionDecl parse() {
    FunctionDecl fn = parseFunctionDecl();
    expect(TokenKind::kEnd);
    return fn;
  }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  [[nodiscard]] bool check(TokenKind kind) const { return peek().kind == kind; }

  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }

  const Token& expect(TokenKind kind) {
    if (!check(kind))
      throwInput(strCat("expected ", tokenKindName(kind), " but found ",
                        tokenKindName(peek().kind), " ('", peek().text,
                        "') at line ", peek().line, ", column ",
                        peek().column));
    return tokens_[pos_++];
  }

  [[noreturn]] void fail(const std::string& message) const {
    throwInput(strCat(message, " at line ", peek().line, ", column ",
                      peek().column));
  }

  // --- declarations ---------------------------------------------------

  FunctionDecl parseFunctionDecl() {
    expect(TokenKind::kVoid);
    FunctionDecl fn;
    fn.name = expect(TokenKind::kIdentifier).text;
    expect(TokenKind::kLParen);
    if (!check(TokenKind::kRParen)) {
      do {
        fn.params.push_back(parseParam());
      } while (match(TokenKind::kComma));
    }
    expect(TokenKind::kRParen);
    fn.body = parseBlock();
    return fn;
  }

  ParamDecl parseParam() {
    ParamDecl param;
    if (match(TokenKind::kLong) || match(TokenKind::kInt)) {
      param.type = ParamDecl::Type::kLong;
      param.name = expect(TokenKind::kIdentifier).text;
      return param;
    }
    expect(TokenKind::kDouble);
    param.name = expect(TokenKind::kIdentifier).text;
    if (check(TokenKind::kLBracket)) {
      param.type = ParamDecl::Type::kDoubleArray;
      while (match(TokenKind::kLBracket)) {
        param.dims.push_back(expect(TokenKind::kIdentifier).text);
        expect(TokenKind::kRBracket);
      }
    } else {
      param.type = ParamDecl::Type::kDouble;
    }
    return param;
  }

  // --- statements -------------------------------------------------------

  StmtPtr parseBlock() {
    expect(TokenKind::kLBrace);
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    while (!check(TokenKind::kRBrace)) block->stmts.push_back(parseStmt());
    expect(TokenKind::kRBrace);
    return block;
  }

  StmtPtr parseStmt() {
    if (check(TokenKind::kFor)) return parseFor();
    if (check(TokenKind::kLBrace)) return parseBlock();
    return parseAssign();
  }

  StmtPtr parseFor() {
    expect(TokenKind::kFor);
    expect(TokenKind::kLParen);
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    // init: [long|int] var = 0
    if (!match(TokenKind::kLong)) match(TokenKind::kInt);
    stmt->loopVar = expect(TokenKind::kIdentifier).text;
    expect(TokenKind::kAssign);
    const Token& zero = expect(TokenKind::kNumber);
    if (zero.numberValue != 0.0)
      fail("loop lower bounds must be 0 in the accepted GEMM form");
    expect(TokenKind::kSemicolon);
    // cond: var < bound
    const std::string& condVar = expect(TokenKind::kIdentifier).text;
    if (condVar != stmt->loopVar) fail("loop condition tests a different variable");
    expect(TokenKind::kLess);
    stmt->loopBound = parseExpr();
    expect(TokenKind::kSemicolon);
    // inc: var++ | ++var | var += 1
    if (match(TokenKind::kPlusPlus)) {
      const std::string& incVar = expect(TokenKind::kIdentifier).text;
      if (incVar != stmt->loopVar) fail("loop increment targets a different variable");
    } else {
      const std::string& incVar = expect(TokenKind::kIdentifier).text;
      if (incVar != stmt->loopVar) fail("loop increment targets a different variable");
      if (!match(TokenKind::kPlusPlus)) {
        expect(TokenKind::kPlusAssign);
        const Token& one = expect(TokenKind::kNumber);
        if (one.numberValue != 1.0) fail("only unit loop strides are accepted");
      }
    }
    expect(TokenKind::kRParen);
    stmt->body = parseStmt();
    return stmt;
  }

  StmtPtr parseAssign() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kAssign;
    ExprPtr target = parsePrimary();
    if (target->kind != ExprKind::kArrayRef)
      fail("assignment target must be an array element");
    if (match(TokenKind::kAssign)) {
      stmt->value = parseExpr();
    } else if (match(TokenKind::kPlusAssign)) {
      auto sum = std::make_unique<Expr>();
      sum->kind = ExprKind::kBinary;
      sum->op = BinaryOp::kAdd;
      sum->lhs = target->clone();
      sum->rhs = parseExpr();
      stmt->value = std::move(sum);
    } else if (match(TokenKind::kStarAssign)) {
      auto product = std::make_unique<Expr>();
      product->kind = ExprKind::kBinary;
      product->op = BinaryOp::kMul;
      product->lhs = target->clone();
      product->rhs = parseExpr();
      stmt->value = std::move(product);
    } else {
      fail("expected '=', '+=' or '*='");
    }
    stmt->target = std::move(target);
    expect(TokenKind::kSemicolon);
    return stmt;
  }

  // --- expressions ------------------------------------------------------

  ExprPtr parseExpr() { return parseAdditive(); }

  ExprPtr parseAdditive() {
    ExprPtr lhs = parseMultiplicative();
    while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
      BinaryOp op = match(TokenKind::kPlus) ? BinaryOp::kAdd
                                            : (advance(), BinaryOp::kSub);
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = parseMultiplicative();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr lhs = parsePrimary();
    while (check(TokenKind::kStar) || check(TokenKind::kSlash)) {
      BinaryOp op = match(TokenKind::kStar) ? BinaryOp::kMul
                                            : (advance(), BinaryOp::kDiv);
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = parsePrimary();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parsePrimary() {
    if (check(TokenKind::kNumber)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kNumber;
      node->number = advance().numberValue;
      return node;
    }
    if (match(TokenKind::kLParen)) {
      ExprPtr inner = parseExpr();
      expect(TokenKind::kRParen);
      return inner;
    }
    if (check(TokenKind::kIdentifier)) {
      std::string name = advance().text;
      if (match(TokenKind::kLParen)) {
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->name = std::move(name);
        if (!check(TokenKind::kRParen)) {
          do {
            call->args.push_back(parseExpr());
          } while (match(TokenKind::kComma));
        }
        expect(TokenKind::kRParen);
        return call;
      }
      if (check(TokenKind::kLBracket)) {
        auto ref = std::make_unique<Expr>();
        ref->kind = ExprKind::kArrayRef;
        ref->name = std::move(name);
        while (match(TokenKind::kLBracket)) {
          ref->args.push_back(parseExpr());
          expect(TokenKind::kRBracket);
        }
        return ref;
      }
      auto var = std::make_unique<Expr>();
      var->kind = ExprKind::kVariable;
      var->name = std::move(name);
      return var;
    }
    fail(strCat("unexpected ", tokenKindName(peek().kind), " in expression"));
  }
};

}  // namespace

FunctionDecl parseFunction(const std::string& source) {
  return Parser(tokenize(source)).parse();
}

}  // namespace sw::frontend
