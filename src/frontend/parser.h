// Recursive-descent parser for the C subset (see ast.h).
#pragma once

#include <string>

#include "frontend/ast.h"

namespace sw::frontend {

/// Parse one function definition.  Throws InputError with line/column
/// diagnostics on malformed input.
FunctionDecl parseFunction(const std::string& source);

}  // namespace sw::frontend
