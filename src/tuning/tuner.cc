#include "tuning/tuner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <random>

#include "core/compiler.h"
#include "core/pipeline.h"
#include "core/sharded_gemm.h"
#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace sw::tuning {

namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

double problemFlops(const core::GemmProblem& p) {
  return 2.0 * static_cast<double>(p.m) * static_cast<double>(p.n) *
         static_cast<double>(p.k) * static_cast<double>(p.batch);
}

/// Shrink the problem towards the validation flop budget: batch first,
/// then repeated halving of the largest dim.  Deterministic, and a
/// problem already inside the budget comes back untouched.
core::GemmProblem clampValidationShape(const core::GemmProblem& problem,
                                       double maxFlops) {
  core::GemmProblem shape = problem;
  if (problemFlops(shape) > maxFlops && shape.batch > 2) shape.batch = 2;
  while (problemFlops(shape) > maxFlops) {
    std::int64_t* largest = &shape.m;
    if (shape.n > *largest) largest = &shape.n;
    if (shape.k > *largest) largest = &shape.k;
    if (*largest <= 1) break;
    *largest = (*largest + 1) / 2;
  }
  return shape;
}

}  // namespace

ScheduleSearchResult::ScheduleSearchResult(
    std::vector<CandidateResult> candidates, bool measurementDecides)
    : candidates_(std::move(candidates)) {
  // Strict improvement only: the enumerator puts the analytic default
  // first, so a tie keeps the paper's choice.
  double bestScore = -1.0;
  if (measurementDecides) {
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const CandidateResult& c = candidates_[i];
      if (!c.validated) continue;
      if (c.measuredGflops > bestScore) {
        bestScore = c.measuredGflops;
        bestIndex_ = i;
        hasBest_ = true;
      }
    }
    if (hasBest_) return;
  }
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const CandidateResult& c = candidates_[i];
    if (!c.feasible) continue;
    if (c.estimatedGflops > bestScore) {
      bestScore = c.estimatedGflops;
      bestIndex_ = i;
      hasBest_ = true;
    }
  }
}

const CandidateResult& ScheduleSearchResult::best() const {
  if (!hasBest_ || bestIndex_ >= candidates_.size())
    throw InputError(
        "ScheduleSearchResult::best(): the search found no feasible "
        "schedule candidate");
  return candidates_[bestIndex_];
}

const CandidateResult* ScheduleSearchResult::bestOrNull() const {
  return hasBest_ && bestIndex_ < candidates_.size()
             ? &candidates_[bestIndex_]
             : nullptr;
}

core::CodegenOptions ScheduleSearchResult::bestOptions(
    const core::CodegenOptions& base) const {
  return best().candidate.apply(base);
}

int ScheduleSearchResult::feasibleCount() const {
  int count = 0;
  for (const CandidateResult& c : candidates_) count += c.feasible ? 1 : 0;
  return count;
}

int ScheduleSearchResult::validatedCount() const {
  int count = 0;
  for (const CandidateResult& c : candidates_) count += c.validated ? 1 : 0;
  return count;
}

ScheduleSearchResult searchSchedules(const core::CodegenOptions& base,
                                     const sunway::ArchConfig& arch,
                                     const core::GemmProblem& problem,
                                     const TunerConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  trace::Span searchSpan(
      "tuner.search",
      {trace::arg("m", problem.m), trace::arg("n", problem.n),
       trace::arg("k", problem.k), trace::arg("batch", problem.batch)});

  const std::vector<EnumeratedCandidate> space =
      enumerateCandidates(base, arch, problem, config.space);

  // --- stage 1: compile + rank every feasible point on the estimator ----
  core::SwGemmCompiler compiler(arch);
  std::vector<CandidateResult> results;
  results.reserve(space.size());
  // Kernels of feasible candidates, index-aligned with `results`, kept for
  // the validation stage.
  std::vector<std::optional<core::CompiledKernel>> kernels(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    const EnumeratedCandidate& entry = space[i];
    CandidateResult result;
    result.candidate = entry.candidate;
    result.spmBytesNeeded = entry.spmBytesNeeded;
    result.hasAsmKernel = entry.candidate.hasAsmKernel(base);
    if (!entry.feasible) {
      result.note = entry.pruneReason;
      results.push_back(std::move(result));
      continue;
    }
    trace::Span candidateSpan("tuner.candidate",
                              {trace::arg("schedule", result.label())});
    try {
      core::CompiledKernel kernel =
          compiler.compile(entry.candidate.apply(base));
      if (entry.candidate.shardedGroups > 1) {
        // Multi-group candidates score through the sharded estimator, so
        // the ranking sees the contention-derated node roofline rather
        // than an optimistic single-group-times-N extrapolation.
        core::ShardedConfig sharded;
        sharded.groups = entry.candidate.shardedGroups;
        const core::ShardedOutcome estimate =
            core::estimateSharded(kernel, arch, sharded, problem);
        result.estimatedGflops = estimate.gflops;
        result.report = estimate.report;
      } else {
        const rt::RunOutcome estimate =
            core::estimateGemm(kernel, arch, problem);
        result.estimatedGflops = estimate.gflops;
        result.report = estimate.report;
      }
      result.feasible = true;
      result.note = result.hasAsmKernel ? "vendor micro-kernel"
                                        : "compiler-scheduled inner loops";
      kernels[i] = std::move(kernel);
    } catch (const Error& e) {
      // The analytic prune should have caught this; keep the pipeline's
      // own reason so the report explains the disagreement.
      result.note = e.what();
    }
    candidateSpan.addArg(
        trace::arg("feasible", result.feasible ? "true" : "false"));
    candidateSpan.addArg(trace::arg("gflops", result.estimatedGflops));
    SW_DEBUG("tuner", "event=candidate schedule=", result.label(),
             " feasible=", result.feasible,
             " est_gflops=", result.estimatedGflops);
    results.push_back(std::move(result));
  }

  std::vector<std::size_t> ranking;
  for (std::size_t i = 0; i < results.size(); ++i)
    if (results[i].feasible) ranking.push_back(i);
  if (ranking.empty())
    throw InputError(strCat(
        "tuner: none of the ", results.size(),
        " enumerated schedule candidates is feasible for GEMM ", problem.m,
        "x", problem.n, "x", problem.k, ": the SPM budget of ",
        arch.spmBytes, " bytes (and the §3.2 mesh constraints) prune the "
        "whole space; raise ArchConfig::spmBytes or widen "
        "SearchSpaceConfig"));
  std::stable_sort(ranking.begin(), ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     return results[a].estimatedGflops >
                            results[b].estimatedGflops;
                   });

  // --- stage 2: measured mesh runs for the top of the ranking -----------
  const core::GemmProblem validationShape =
      clampValidationShape(problem, config.maxValidationFlops);
  const bool fullShape = validationShape.m == problem.m &&
                         validationShape.n == problem.n &&
                         validationShape.k == problem.k &&
                         validationShape.batch == problem.batch;
  const int topN =
      std::min<int>(config.validateTopN, static_cast<int>(ranking.size()));
  for (int rank = 0; rank < topN; ++rank) {
    CandidateResult& result = results[ranking[static_cast<std::size_t>(rank)]];
    const core::CompiledKernel& kernel =
        *kernels[ranking[static_cast<std::size_t>(rank)]];
    trace::Span validateSpan("tuner.validate",
                             {trace::arg("schedule", result.label()),
                              trace::arg("rank", std::int64_t{rank})});
    // Padded kernels inflate the working shape to the tile grid; skip a
    // measured run that would dwarf the budget the proxy shape enforces.
    const core::PaddedShape padded =
        core::padShape(validationShape.m, validationShape.n,
                       validationShape.k, kernel.options, arch);
    const double paddedFlops =
        2.0 * static_cast<double>(padded.m) * static_cast<double>(padded.n) *
        static_cast<double>(padded.k) *
        static_cast<double>(validationShape.batch);
    if (paddedFlops > 8.0 * config.maxValidationFlops) {
      result.note = strCat(result.note,
                           "; validation skipped: padded working shape ",
                           padded.m, "x", padded.n, "x", padded.k,
                           " exceeds the validation budget");
      continue;
    }
    const bool tA = kernel.options.transposeA;
    const bool tB = kernel.options.transposeB;
    const std::int64_t m = validationShape.m, n = validationShape.n,
                       k = validationShape.k, batch = validationShape.batch;
    std::vector<double> a = randomMatrix(batch * (tA ? k * m : m * k), 11);
    std::vector<double> b = randomMatrix(batch * (tB ? n * k : k * n), 12);
    std::vector<double> c = randomMatrix(batch * m * n, 13);
    try {
      if (result.candidate.shardedGroups > 1) {
        core::ShardedConfig sharded;
        sharded.groups = result.candidate.shardedGroups;
        const core::ShardedOutcome outcome = core::runShardedFunctional(
            kernel, arch, sharded, validationShape, a, b, c);
        result.validated = true;
        result.measuredGflops = outcome.gflops;
        result.report = outcome.report;
        validateSpan.addArg(trace::arg("gflops", outcome.gflops));
      } else {
        const rt::RunOutcome outcome = core::runGemmFunctional(
            kernel, arch, validationShape, a, b, c, {});
        result.validated = true;
        result.measuredGflops = outcome.gflops;
        result.report = outcome.report;
        validateSpan.addArg(trace::arg("gflops", outcome.gflops));
      }
    } catch (const Error& e) {
      result.note = strCat(result.note, "; validation failed: ", e.what());
      validateSpan.addArg(trace::arg("error", e.what()));
    }
  }

  ScheduleSearchResult search(std::move(results), fullShape);
  search.validationShape = topN > 0 ? validationShape
                                    : core::GemmProblem{0, 0, 0, 0};
  search.validationAtFullShape = fullShape && topN > 0;
  search.searchSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const CandidateResult& best = search.best();
  const double bestGflops = search.validationAtFullShape && best.validated
                                ? best.measuredGflops
                                : best.estimatedGflops;
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.set("tuner.candidates",
               static_cast<double>(search.candidates().size()));
  registry.set("tuner.feasible", static_cast<double>(search.feasibleCount()));
  registry.set("tuner.validated",
               static_cast<double>(search.validatedCount()));
  registry.set("tuner.best_gflops", bestGflops);
  registry.set("tuner.search_seconds", search.searchSeconds);
  searchSpan.addArg(trace::arg("best", best.label()));
  searchSpan.addArg(trace::arg("best_gflops", bestGflops));
  SW_INFO("tuner", "event=search_done best=", best.label(),
          " best_gflops=", bestGflops,
          " candidates=", search.candidates().size(),
          " feasible=", search.feasibleCount(),
          " validated=", search.validatedCount(),
          " search_seconds=", search.searchSeconds);
  return search;
}

}  // namespace sw::tuning
