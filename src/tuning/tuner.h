// Two-stage schedule search driver (the autotuner the paper skips).
//
// The paper argues (§3.1) that analytical modelling — adopting the vendor
// micro-kernel's 64x64x32 shape — suffices for GEMM, avoiding the "tedious
// tuning overhead" of ATLAS-style search.  This subsystem builds the
// search anyway, now that candidate evaluation is cheap and attributable:
//
//   stage 1 (rank):     every feasible point of the enumerated space is
//                       compiled through the full pipeline and scored with
//                       the timing estimator — plan engine, logical
//                       clocks, so the ranking is deterministic and
//                       host-invariant;
//   stage 2 (validate): the top-N of the ranking run functionally on the
//                       threaded mesh simulator with random data.  When
//                       the problem fits the validation flop budget the
//                       mesh's simulated GFLOPS (same logical clocks, full
//                       protocol) decide the winner; for paper-scale
//                       shapes the runs validate a proxy shape and the
//                       estimator ranking stands.
//
// Every candidate carries its PerfReport, so the search output doubles as
// a roofline attribution table: *why* a tile shape loses (SPM prune,
// DMA-bound, lost asm contract) is part of the result, which is the
// paper's own argument for the analytical model.  The winner replaces the
// analytic default only on a strict simulated-GFLOPS improvement, so ties
// keep the paper's choice.
//
// Results expose only checked accessors (best() throws on an empty
// search instead of indexing out of bounds — the TuneResult::bestIndex
// footgun of the retired src/core/tuner.h is structurally gone).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/gemm_runner.h"
#include "core/options.h"
#include "support/perf_report.h"
#include "sunway/arch.h"
#include "tuning/search_space.h"

namespace sw::tuning {

struct TunerConfig {
  SearchSpaceConfig space;
  /// Stage-2 width: how many of the top-ranked candidates get a measured
  /// mesh run.  0 skips validation (estimator-only search).
  int validateTopN = 3;
  /// Flop budget (2·m·n·k·batch) for one validation run; larger problems
  /// validate a proportionally-halved proxy shape so paper-scale searches
  /// stay tractable.  Candidates whose *padded* working shape still blows
  /// 8x the budget skip validation with a note.
  double maxValidationFlops = 1.0e9;
};

/// One candidate's full search record: enumeration verdict, stage-1
/// estimate, stage-2 measurement, and the perf report of the most
/// faithful run available (mesh when validated, else the estimate).
struct CandidateResult {
  ScheduleCandidate candidate;
  bool feasible = false;
  /// Prune reason (infeasible), kernel note (feasible), or validation
  /// failure diagnostics.
  std::string note;
  bool hasAsmKernel = false;
  std::int64_t spmBytesNeeded = 0;
  /// Stage-1 timing-estimator GFLOPS; 0 when infeasible.
  double estimatedGflops = 0.0;
  /// Stage 2: whether a measured mesh run completed, and its simulated
  /// GFLOPS (at the validation shape, which result.validationShape names).
  bool validated = false;
  double measuredGflops = 0.0;
  perf::PerfReport report;

  [[nodiscard]] std::string label() const { return candidate.label(); }
};

/// Search output.  No public index: the best candidate is reachable only
/// through accessors that check it exists.
class ScheduleSearchResult {
 public:
  ScheduleSearchResult() = default;
  /// Build from a candidate list, selecting the best feasible entry
  /// (validated measurement when decisive, else the stage-1 estimate;
  /// strict improvement only, so earlier entries win ties).
  /// `measurementDecides` marks the measured GFLOPS as rank-authoritative
  /// (validation ran at the full problem shape).
  explicit ScheduleSearchResult(std::vector<CandidateResult> candidates,
                                bool measurementDecides = false);

  [[nodiscard]] const std::vector<CandidateResult>& candidates() const {
    return candidates_;
  }
  [[nodiscard]] bool hasBest() const { return hasBest_; }
  /// The winning candidate; throws InputError when the search found no
  /// feasible schedule (never indexes out of bounds).
  [[nodiscard]] const CandidateResult& best() const;
  /// nullptr instead of throwing, for callers with a fallback schedule.
  [[nodiscard]] const CandidateResult* bestOrNull() const;
  /// base overlaid with the winning schedule; throws like best().
  [[nodiscard]] core::CodegenOptions bestOptions(
      const core::CodegenOptions& base) const;

  [[nodiscard]] int feasibleCount() const;
  [[nodiscard]] int validatedCount() const;

  /// Host wall-clock the search burned (the cost §3.1 avoids).
  double searchSeconds = 0.0;
  /// The shape stage 2 actually ran (== the problem when it fit the
  /// budget); all-zero when validation was skipped entirely.
  core::GemmProblem validationShape{0, 0, 0, 0};
  /// True when validationShape is the full problem, i.e. the measured
  /// GFLOPS decided the ranking.
  bool validationAtFullShape = false;

 private:
  std::vector<CandidateResult> candidates_;
  std::size_t bestIndex_ = 0;
  bool hasBest_ = false;
};

/// Run the two-stage search.  Throws InputError naming the SPM budget when
/// no enumerated candidate is feasible; propagates nothing else from
/// individual candidates (their failures become notes).
[[nodiscard]] ScheduleSearchResult searchSchedules(
    const core::CodegenOptions& base, const sunway::ArchConfig& arch,
    const core::GemmProblem& problem, const TunerConfig& config = {});

}  // namespace sw::tuning
