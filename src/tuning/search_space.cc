#include "tuning/search_space.h"

#include <set>

#include "core/pipeline.h"
#include "kernel/microkernel.h"
#include "support/format.h"

namespace sw::tuning {

core::CodegenOptions ScheduleCandidate::apply(core::CodegenOptions base) const {
  base.tileM = tileM;
  base.tileN = tileN;
  base.tileK = tileK;
  base.stripFactor = stripFactor;
  base.edgeTiles = edgeTiles;
  base.hideLatency = bufferDepth == 2;
  base.microMr = microMr;
  base.microNr = microNr;
  return base;
}

std::string ScheduleCandidate::label() const {
  std::string label =
      strCat(tileM, "x", tileN, "x", tileK, "/s", stripFactor, "/d",
             bufferDepth, edgeTiles ? "/edge" : "/pad", "/mk", microMr,
             "x", microNr);
  if (shardedGroups > 1) label += strCat("/g", shardedGroups);
  return label;
}

bool ScheduleCandidate::hasAsmKernel(const core::CodegenOptions& base) const {
  // §7.2: the vendor assembly routine exists for exactly one shape.
  return base.useAsm && tileM == 64 && tileN == 64 && tileK == 32;
}

std::int64_t spmBytesForOptions(const core::CodegenOptions& options) {
  // Mirror of the pipeline's SpmBufferDecl construction: C (one phase),
  // the DMA staging buffers at `dmaPhases` depth, their RMA mirrors when
  // broadcasting, and the transpose scratch tiles.
  const std::int64_t phases = options.hideLatency ? 2 : 1;
  std::int64_t doubles = options.tileM * options.tileN;  // C
  const std::int64_t operandTile =
      options.tileM * options.tileK + options.tileK * options.tileN;
  doubles += phases * operandTile;                       // A_dma + B_dma
  if (options.useRma) doubles += phases * operandTile;   // A_rma + B_rma
  if (options.transposeA) doubles += options.tileK * options.tileM;  // T_A
  if (options.transposeB) doubles += options.tileN * options.tileK;  // T_B
  return doubles * static_cast<std::int64_t>(sizeof(double));
}

bool shapeDivisible(const core::CodegenOptions& applied,
                    const sunway::ArchConfig& arch,
                    const core::GemmProblem& problem) {
  // Divisible == padShape is the identity: the same rounding the padded
  // host path applies, so edge clamps never bind exactly when this holds.
  const core::PaddedShape padded =
      core::padShape(problem.m, problem.n, problem.k, applied, arch);
  return padded.m == problem.m && padded.n == problem.n &&
         padded.k == problem.k;
}

namespace {

/// Analytic verdict for one point; returns the fully-filled record.
EnumeratedCandidate judge(const ScheduleCandidate& candidate,
                          const core::CodegenOptions& base,
                          const sunway::ArchConfig& arch) {
  EnumeratedCandidate entry;
  entry.candidate = candidate;
  const core::CodegenOptions applied = candidate.apply(base);
  entry.spmBytesNeeded = spmBytesForOptions(applied);
  if (candidate.stripFactor != arch.meshRows) {
    entry.pruneReason =
        strCat("strip factor ", candidate.stripFactor,
               " != mesh width ", arch.meshRows, " (§3.2)");
    return entry;
  }
  if (candidate.bufferDepth == 2 && (!base.useRma || !base.hideLatency)) {
    entry.pruneReason =
        "double buffering needs the RMA pipeline (§6), which the base "
        "options disable";
    return entry;
  }
  if (entry.spmBytesNeeded > arch.spmBytes) {
    entry.pruneReason = strCat(
        "SPM working set ", entry.spmBytesNeeded, " bytes exceeds the SPM "
        "budget of ", arch.spmBytes, " bytes at buffer depth ",
        candidate.bufferDepth);
    return entry;
  }
  if (!kernel::isFeasibleMicroKernelVariant(candidate.microMr,
                                            candidate.microNr)) {
    entry.pruneReason = strCat(
        "micro-kernel register block ", candidate.microMr, "x",
        candidate.microNr, " is outside the generated family (§7.2)");
    return entry;
  }
  if (candidate.shardedGroups < 1 ||
      candidate.shardedGroups > arch.coreGroups) {
    entry.pruneReason = strCat(
        "sharded group count ", candidate.shardedGroups,
        " is outside the node's 1..", arch.coreGroups, " core groups");
    return entry;
  }
  entry.feasible = true;
  return entry;
}

}  // namespace

std::vector<EnumeratedCandidate> enumerateCandidates(
    const core::CodegenOptions& base, const sunway::ArchConfig& arch,
    const core::GemmProblem& problem, const SearchSpaceConfig& config) {
  std::vector<EnumeratedCandidate> out;
  std::set<std::string> seen;
  auto push = [&](const ScheduleCandidate& candidate) {
    if (!seen.insert(candidate.label()).second) return;
    out.push_back(judge(candidate, base, arch));
  };

  // The analytic default always leads: the driver replaces it only on a
  // strict simulated-GFLOPS improvement, so a search over a space where
  // the paper's choice is optimal reports exactly the paper's choice.
  ScheduleCandidate analytic;
  analytic.tileM = base.tileM;
  analytic.tileN = base.tileN;
  analytic.tileK = base.tileK;
  analytic.stripFactor = base.stripFactor;
  analytic.bufferDepth = base.hideLatency ? 2 : 1;
  analytic.edgeTiles = base.edgeTiles;
  push(analytic);

  // MN grid: every square point plus (when enabled) its 2:1 rectangular
  // neighbours that are themselves grid values.
  std::vector<std::pair<std::int64_t, std::int64_t>> mnPairs;
  std::set<std::int64_t> mnValues(config.tileMN.begin(), config.tileMN.end());
  for (const std::int64_t v : config.tileMN) {
    mnPairs.emplace_back(v, v);
    if (config.rectangularTiles && mnValues.count(2 * v) != 0) {
      mnPairs.emplace_back(v, 2 * v);
      mnPairs.emplace_back(2 * v, v);
    }
  }

  for (const auto& [tm, tn] : mnPairs) {
    for (const std::int64_t tk : config.tileK) {
      for (const std::int64_t strip : config.stripFactors) {
        const bool stripValid = strip == arch.meshRows;
        for (const int depth : config.bufferDepths) {
          // Invalid strip factors are structurally infeasible whatever the
          // depth/edge variant; record the §3.2 prune once per tile point
          // instead of fanning it across the other axes.
          if (!stripValid && depth != config.bufferDepths.front()) break;
          ScheduleCandidate candidate;
          candidate.tileM = tm;
          candidate.tileN = tn;
          candidate.tileK = tk;
          candidate.stripFactor = strip;
          candidate.bufferDepth = depth;
          candidate.edgeTiles = false;
          push(candidate);
          if (!stripValid) break;
          if (config.edgeCandidates &&
              !shapeDivisible(candidate.apply(base), arch, problem)) {
            candidate.edgeTiles = true;
            push(candidate);
            candidate.edgeTiles = false;
          }
          // Micro-kernel co-search: on asm-capable tile points the MR x NR
          // register block is a real schedule axis (the generated family
          // replaces the single fixed vendor routine); elsewhere the naive
          // kernel ignores it and the axis would only duplicate points.
          if (candidate.hasAsmKernel(base)) {
            for (const kernel::MicroKernelVariant& variant :
                 kernel::microKernelFamily()) {
              candidate.microMr = variant.mr;
              candidate.microNr = variant.nr;
              push(candidate);
            }
          }
        }
      }
    }
  }
  // Group fan-out: the sharding axis is orthogonal to the kernel schedule
  // (apply() leaves codegen untouched), so replay the enumerated list once
  // per extra group count instead of threading it through the grid loops.
  const std::size_t singleGroupPoints = out.size();
  for (const int groups : config.shardedGroups) {
    if (groups == 1) continue;
    for (std::size_t i = 0; i < singleGroupPoints; ++i) {
      ScheduleCandidate candidate = out[i].candidate;
      candidate.shardedGroups = groups;
      push(candidate);
    }
  }
  return out;
}

}  // namespace sw::tuning
