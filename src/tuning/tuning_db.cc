#include "tuning/tuning_db.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "core/kernel_serdes.h"
#include "support/digest.h"
#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"

namespace sw::tuning {

namespace fs = std::filesystem;

std::string canonicalTuneKey(const core::CodegenOptions& base,
                             const sunway::ArchConfig& arch,
                             const core::GemmProblem& problem) {
  // Every base field can steer the search (the analytic-default candidate
  // is the base schedule; hideLatency/useRma gate the depth-2 axis), so
  // the whole request key stays in — plus the DB schema version and the
  // problem shape.  The alpha/beta scalars never change the schedule.
  return strCat("swtune ", kTuningDbVersion, " ",
                core::canonicalRequestKey(base, arch), "shape ", problem.m,
                " ", problem.n, " ", problem.k, " ", problem.batch);
}

namespace {

void appendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Locate `"name":` in a JSON object and return the offset of the first
/// value character; npos when absent.
std::size_t valueOffset(const std::string& json, std::string_view name) {
  const std::string needle = strCat("\"", name, "\"");
  std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::string::npos;
  ++pos;
  while (pos < json.size() &&
         std::isspace(static_cast<unsigned char>(json[pos])) != 0)
    ++pos;
  return pos < json.size() ? pos : std::string::npos;
}

std::int64_t parseIntField(const std::string& json, std::string_view name) {
  const std::size_t pos = valueOffset(json, name);
  if (pos == std::string::npos)
    throwInput(strCat("tuning record is missing field '", name, "'"));
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(json.c_str() + pos, &end, 10);
  if (end == json.c_str() + pos || errno == ERANGE)
    throwInput(strCat("tuning record field '", name, "' is not an integer"));
  return v;
}

double parseDoubleField(const std::string& json, std::string_view name) {
  const std::size_t pos = valueOffset(json, name);
  if (pos == std::string::npos)
    throwInput(strCat("tuning record is missing field '", name, "'"));
  char* end = nullptr;
  const double v = std::strtod(json.c_str() + pos, &end);
  if (end == json.c_str() + pos || !std::isfinite(v))
    throwInput(strCat("tuning record field '", name,
                      "' is not a finite number"));
  return v;
}

bool parseBoolField(const std::string& json, std::string_view name) {
  const std::size_t pos = valueOffset(json, name);
  if (pos == std::string::npos)
    throwInput(strCat("tuning record is missing field '", name, "'"));
  if (json.compare(pos, 4, "true") == 0) return true;
  if (json.compare(pos, 5, "false") == 0) return false;
  throwInput(strCat("tuning record field '", name, "' is not a boolean"));
}

std::string parseStringField(const std::string& json, std::string_view name) {
  std::size_t pos = valueOffset(json, name);
  if (pos == std::string::npos || json[pos] != '"')
    throwInput(strCat("tuning record is missing string field '", name, "'"));
  ++pos;
  std::string out;
  while (pos < json.size() && json[pos] != '"') {
    if (json[pos] == '\\') {
      if (pos + 1 >= json.size())
        throwInput(strCat("tuning record string '", name, "' is truncated"));
      const char escape = json[pos + 1];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos + 5 >= json.size())
            throwInput(
                strCat("tuning record string '", name, "' is truncated"));
          out += static_cast<char>(
              std::strtol(json.substr(pos + 2, 4).c_str(), nullptr, 16));
          pos += 4;
          break;
        }
        default:
          throwInput(strCat("tuning record string '", name,
                            "' has an unknown escape"));
      }
      pos += 2;
    } else {
      out += json[pos++];
    }
  }
  if (pos >= json.size())
    throwInput(strCat("tuning record string '", name, "' is unterminated"));
  return out;
}

}  // namespace

TuningDb::TuningDb(std::string rootDir) : rootDir_(std::move(rootDir)) {}

std::string TuningDb::pathForKey(const std::string& key) const {
  if (rootDir_.empty()) return {};
  return (fs::path(rootDir_) / strCat("v", kTuningDbVersion) /
          (digestHex(fnv1a64(key)) + ".json"))
      .string();
}

std::string TuningDb::renderRecord(const std::string& key,
                                   const TunedScheduleRecord& record) {
  std::string out = "{";
  auto num = [&out](std::string_view name, std::int64_t v, bool first = false) {
    if (!first) out += ",";
    out += strCat("\"", name, "\":", v);
  };
  auto real = [&out](std::string_view name, double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", std::isfinite(v) ? v : 0.0);
    out += strCat(",\"", name, "\":", buf);
  };
  auto str = [&out](std::string_view name, std::string_view v) {
    out += strCat(",\"", name, "\":\"");
    appendEscaped(out, v);
    out += "\"";
  };
  num("schema_version", kTuningDbVersion, /*first=*/true);
  str("key", key);
  num("tile_m", record.schedule.tileM);
  num("tile_n", record.schedule.tileN);
  num("tile_k", record.schedule.tileK);
  num("strip_factor", record.schedule.stripFactor);
  num("buffer_depth", record.schedule.bufferDepth);
  out += strCat(",\"edge_tiles\":",
                record.schedule.edgeTiles ? "true" : "false");
  num("micro_mr", record.schedule.microMr);
  num("micro_nr", record.schedule.microNr);
  num("sharded_groups", record.schedule.shardedGroups);
  real("gflops", record.gflops);
  real("measured_gflops", record.measuredGflops);
  str("verdict", record.verdict);
  num("candidates_enumerated", record.candidatesEnumerated);
  num("candidates_feasible", record.candidatesFeasible);
  num("candidates_validated", record.candidatesValidated);
  real("search_seconds", record.searchSeconds);
  out += "}";
  return out;
}

std::optional<TunedScheduleRecord> TuningDb::lookup(const std::string& key) {
  const std::string path = pathForKey(key);
  if (path.empty()) {
    ++stats_.misses;
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++stats_.misses;  // plain miss: never tuned (or dropped)
    return std::nullopt;
  }
  std::ostringstream body;
  body << in.rdbuf();
  const std::string content = body.str();

  bool stale = false;
  try {
    const std::int64_t version = parseIntField(content, "schema_version");
    if (version != kTuningDbVersion) {
      stale = true;
      throwInput(strCat("tuning record schema version ", version,
                        " != expected ", kTuningDbVersion));
    }
    if (parseStringField(content, "key") != key)
      throwInput("tuning record key mismatch (digest collision or stale "
                 "file)");
    TunedScheduleRecord record;
    record.schedule.tileM = parseIntField(content, "tile_m");
    record.schedule.tileN = parseIntField(content, "tile_n");
    record.schedule.tileK = parseIntField(content, "tile_k");
    record.schedule.stripFactor = parseIntField(content, "strip_factor");
    record.schedule.bufferDepth =
        static_cast<int>(parseIntField(content, "buffer_depth"));
    record.schedule.edgeTiles = parseBoolField(content, "edge_tiles");
    record.schedule.microMr =
        static_cast<int>(parseIntField(content, "micro_mr"));
    record.schedule.microNr =
        static_cast<int>(parseIntField(content, "micro_nr"));
    record.schedule.shardedGroups =
        static_cast<int>(parseIntField(content, "sharded_groups"));
    record.gflops = parseDoubleField(content, "gflops");
    record.measuredGflops = parseDoubleField(content, "measured_gflops");
    record.verdict = parseStringField(content, "verdict");
    record.candidatesEnumerated =
        static_cast<int>(parseIntField(content, "candidates_enumerated"));
    record.candidatesFeasible =
        static_cast<int>(parseIntField(content, "candidates_feasible"));
    record.candidatesValidated =
        static_cast<int>(parseIntField(content, "candidates_validated"));
    record.searchSeconds = parseDoubleField(content, "search_seconds");
    if (record.schedule.tileM <= 0 || record.schedule.tileN <= 0 ||
        record.schedule.tileK <= 0 || record.schedule.stripFactor <= 0 ||
        (record.schedule.bufferDepth != 1 &&
         record.schedule.bufferDepth != 2) ||
        record.schedule.microMr <= 0 || record.schedule.microNr <= 0 ||
        record.schedule.shardedGroups < 1 || record.gflops < 0.0)
      throwInput("tuning record carries an out-of-range schedule");
    ++stats_.hits;
    return record;
  } catch (const Error& e) {
    // Stale (version skew) and corrupt (everything else) both re-tune;
    // they are counted apart because version skew after an upgrade is
    // expected, a parse failure is not.
    ++(stale ? stats_.stale : stats_.corrupt);
    SW_WARN("tuning", "event=db_entry_", stale ? "stale" : "corrupt",
            " path=", path, " action=re-tune error=\"", e.what(), "\"");
    std::error_code ec;
    fs::remove(path, ec);  // best effort; the re-tune overwrites anyway
    return std::nullopt;
  }
}

void TuningDb::store(const std::string& key,
                     const TunedScheduleRecord& record) {
  const std::string path = pathForKey(key);
  if (path.empty()) return;
  try {
    fs::create_directories(fs::path(path).parent_path());
    // Atomic publish, same discipline as the kernel cache: full write to
    // a per-thread temp name in the directory, then rename over the final
    // path so readers never observe a partial record.
    static std::atomic<std::uint64_t> tmpCounter{0};
    const std::string tmpPath = strCat(path, ".tmp.", tmpCounter.fetch_add(1));
    {
      std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
      if (!out) throwInput(strCat("cannot open '", tmpPath, "'"));
      out << renderRecord(key, record) << "\n";
      out.flush();
      if (!out) throwInput(strCat("short write to '", tmpPath, "'"));
    }
    fs::rename(tmpPath, path);
    ++stats_.stores;
    SW_DEBUG("tuning", "event=db_entry_stored path=", path,
             " schedule=", record.schedule.label());
  } catch (const std::exception& e) {
    SW_WARN("tuning", "event=db_store_failed path=", path, " error=\"",
            e.what(), "\"");
  }
}

}  // namespace sw::tuning
