// Schedule search space for the autotuner (replacing the fixed grid the
// retired src/core/tuner.cc hard-coded).
//
// A schedule candidate is everything the paper's analytical model (§3.1,
// §3.2, §6) decides by hand: the micro-kernel tile (tileM × tileN × tileK),
// the strip-mining factor of the reduced dimension, the SPM buffer depth
// (2 = the §6 double-buffered pipeline, 1 = issue-and-wait), and whether
// the kernel carries edge-tile clamps (PR 5) instead of the §8.1 padding
// convention.  The enumerator expands a configurable grid over those axes
// and prunes analytically — against the same SPM working-set formula the
// pipeline's planSpmLayout enforces and the same structural constraints it
// SW_CHECKs (strip factor == mesh width, latency hiding requires RMA) —
// so the search driver never burns a pipeline run on a candidate that is
// known to throw.  Pruned points are kept in the output with the pruning
// reason: the tuner's report shows *why* the space shrank, which is the
// paper's own argument for the analytical model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/gemm_runner.h"
#include "core/options.h"
#include "sunway/arch.h"

namespace sw::tuning {

/// One point of the schedule search space: the knobs the tuner owns.
/// Everything else (asm/RMA/fusion/transpose toggles) is inherited from
/// the caller's base CodegenOptions via apply().
struct ScheduleCandidate {
  std::int64_t tileM = 64;
  std::int64_t tileN = 64;
  std::int64_t tileK = 32;
  std::int64_t stripFactor = 8;
  /// SPM phases per operand buffer: 2 = double-buffered §6 pipeline
  /// (CodegenOptions::hideLatency), 1 = single-buffered issue-and-wait.
  int bufferDepth = 2;
  /// Edge-tile clamps (PR 5) instead of the §8.1 zero-padding convention.
  bool edgeTiles = false;
  /// MR x NR register block of the asm micro-kernel family
  /// (kernel/microkernel.h); only meaningful on asm-capable tile points,
  /// where the enumerator co-searches the family.
  int microMr = 4;
  int microNr = 8;
  /// Core groups the runtime shards the problem across (core/sharded_gemm).
  /// Purely a runtime decomposition: apply() leaves the kernel untouched,
  /// and 1 (the default) means single-group execution.
  int shardedGroups = 1;

  /// Overlay this candidate onto `base`, leaving every non-schedule field
  /// (asm, RMA, fusion, transposes, batching) untouched.  bufferDepth == 2
  /// maps to hideLatency; the enumerator never emits depth 2 when the base
  /// forbids it (no RMA / hiding disabled).
  [[nodiscard]] core::CodegenOptions apply(core::CodegenOptions base) const;

  /// "64x64x32/s8/d2/pad/mk4x8" — tile, strip factor, buffer depth, edge
  /// mode, micro-kernel register block; "/gN" appended only when the
  /// candidate shards across N > 1 core groups.
  [[nodiscard]] std::string label() const;

  /// Whether this tile matches the vendor micro-kernel contract (§7.2:
  /// the assembly routine exists for exactly 64x64x32) under `base`.
  [[nodiscard]] bool hasAsmKernel(const core::CodegenOptions& base) const;
};

/// One enumerated point plus its analytic feasibility verdict.
struct EnumeratedCandidate {
  ScheduleCandidate candidate;
  /// Passed every analytic check; worth a pipeline run.
  bool feasible = false;
  /// Why the point was pruned (empty when feasible).
  std::string pruneReason;
  /// Analytic SPM working set of the candidate's buffer layout, in bytes
  /// (mirrors the pipeline's SpmBufferDecl construction exactly).
  std::int64_t spmBytesNeeded = 0;
};

/// The grid the enumerator expands.  Defaults cover the vendor point, its
/// power-of-two neighbourhood and the non-64-multiple points edge-tile
/// codegen made legal, plus deliberately-invalid strip factors so the
/// report can show the §3.2 constraint binding.
struct SearchSpaceConfig {
  /// Values for the parallel tile dims; the grid takes every square point
  /// plus the 2:1 rectangular neighbours of each value.
  std::vector<std::int64_t> tileMN = {16, 32, 48, 64, 96, 128};
  std::vector<std::int64_t> tileK = {16, 32, 48, 64};
  /// Strip factors to enumerate; anything != arch.meshRows is pruned with
  /// the §3.2 reason (recorded once per tile point, not per depth).
  std::vector<std::int64_t> stripFactors = {4, 8, 16};
  /// Buffer depths, best-first.
  std::vector<int> bufferDepths = {2, 1};
  /// Enumerate rectangular (tileM != tileN) neighbours.
  bool rectangularTiles = true;
  /// Enumerate edge-tile variants when the problem shape is not divisible
  /// by the candidate tile grid (divisible shapes bind no clamps, so the
  /// edge variant would be redundant).
  bool edgeCandidates = true;
  /// Core-group counts to shard across.  {1} (the default) keeps the
  /// search single-group; widening it (e.g. {1, 6} via --groups) fans
  /// every feasible schedule out per group count, scored through the
  /// contention-derated sharded estimator.
  std::vector<int> shardedGroups = {1};
};

/// Analytic SPM working set of `options` in bytes: C + double/single
/// buffered DMA operands + RMA mirrors + transpose scratch, 8 bytes per
/// double.  Matches what the pipeline hands planSpmLayout, so
/// `spmBytesForOptions(o, arch) <= arch.spmBytes` iff compile succeeds on
/// the SPM axis.
[[nodiscard]] std::int64_t spmBytesForOptions(
    const core::CodegenOptions& options);

/// Whether the problem divides evenly by the applied options' tile grid
/// on all three dims (batch never tiles); when it does, edge clamps never
/// bind.  Takes the *applied* options because the k rounding unit depends
/// on the RMA strip-mining, not just the candidate.
[[nodiscard]] bool shapeDivisible(const core::CodegenOptions& applied,
                                  const sunway::ArchConfig& arch,
                                  const core::GemmProblem& problem);

/// Expand the grid against `base`/`arch`/`problem`.  The first entry is
/// always the analytic default (the base options' own schedule), so a
/// search that finds no strictly better candidate keeps the paper's
/// choice.  Order is deterministic; every point appears exactly once.
[[nodiscard]] std::vector<EnumeratedCandidate> enumerateCandidates(
    const core::CodegenOptions& base, const sunway::ArchConfig& arch,
    const core::GemmProblem& problem, const SearchSpaceConfig& config = {});

}  // namespace sw::tuning
