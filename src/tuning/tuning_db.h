// Persistent tuning database: tuned schedules survive the process.
//
// A search result worth keeping is a (request, problem shape) -> schedule
// mapping.  The database stores one JSON record per key under
// `<root>/v<version>/<key-digest>.json`, addressed by the same
// canonical-request-key machinery as the kernel cache: the tune key is the
// canonical rendering of every field the winner depends on — the base
// CodegenOptions with the *searched* fields normalized out, every
// ArchConfig field, the database schema version, and the problem shape.
// Records are published atomically (write to a temp name, rename over the
// final path) so concurrent readers never observe a partial file;
// corrupt, truncated, foreign or stale-version entries are logged,
// removed, and reported as a miss so the caller re-tunes.
//
// Counters (hits/misses/corrupt/stale/stores) are surfaced through
// stats() and mirrored into the global MetricsRegistry as `tuner.db_*`
// gauges by the service layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/gemm_runner.h"
#include "core/options.h"
#include "sunway/arch.h"
#include "tuning/search_space.h"

namespace sw::tuning {

/// Bumped whenever the record layout or the meaning of a field changes;
/// readers treat other versions as stale and re-tune.  v2: records carry
/// the winner's MR x NR micro-kernel register block.  v3: records carry
/// the winner's sharded core-group count.
inline constexpr int kTuningDbVersion = 3;

/// One persisted search winner plus enough provenance to audit it.
struct TunedScheduleRecord {
  ScheduleCandidate schedule;
  /// Simulated GFLOPS the search credited the winner with (measured when
  /// validation was decisive, else the stage-1 estimate).
  double gflops = 0.0;
  /// Mesh-measured simulated GFLOPS, 0 when validation did not run.
  double measuredGflops = 0.0;
  /// Roofline verdict of the winner's perf report.
  std::string verdict;
  int candidatesEnumerated = 0;
  int candidatesFeasible = 0;
  int candidatesValidated = 0;
  double searchSeconds = 0.0;
};

/// Canonical, byte-stable key of one tuning decision: the base options
/// with the schedule axes the search owns (tile, strip, buffer depth,
/// edge tiles) normalized to sentinels — so requests differing only in
/// those axes share one DB entry — plus the full ArchConfig and the
/// problem shape.
[[nodiscard]] std::string canonicalTuneKey(const core::CodegenOptions& base,
                                           const sunway::ArchConfig& arch,
                                           const core::GemmProblem& problem);

struct TuningDbStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;     // plain misses (no file)
  std::int64_t corrupt = 0;    // unparsable/truncated/key-mismatch entries
  std::int64_t stale = 0;      // version-skewed entries
  std::int64_t stores = 0;
};

/// The on-disk tier.  Not internally locked: callers serialize concurrent
/// lookups per key (the service's single-flight does).  An empty root
/// disables persistence (lookup always misses, store is a no-op).
class TuningDb {
 public:
  explicit TuningDb(std::string rootDir);

  [[nodiscard]] const std::string& rootDir() const { return rootDir_; }

  /// The record stored for `key`, or nullopt on miss.  Corrupt and stale
  /// entries are logged, removed from disk, counted, and reported as a
  /// miss so the caller re-tunes.
  [[nodiscard]] std::optional<TunedScheduleRecord> lookup(
      const std::string& key);

  /// Atomically publish `record` under `key` (write-then-rename).  Store
  /// failures degrade to a cold database, never to a caller error.
  void store(const std::string& key, const TunedScheduleRecord& record);

  /// Absolute path the key's record lives at; empty without a root.
  [[nodiscard]] std::string pathForKey(const std::string& key) const;

  [[nodiscard]] const TuningDbStats& stats() const { return stats_; }

  /// Serialize a record to its JSON form (exposed for tests; the schema
  /// mirrors what lookup() parses).
  [[nodiscard]] static std::string renderRecord(
      const std::string& key, const TunedScheduleRecord& record);

 private:
  std::string rootDir_;
  TuningDbStats stats_;
};

}  // namespace sw::tuning
