// The executable kernel program — the code AST produced by scanning the
// final schedule tree (§7.1).
//
// One KernelProgram describes the per-CPE athread code: nested loops,
// DMA/RMA issues, reply waits, synchronisations and compute-kernel calls.
// Two independent backends consume it:
//   * the AthreadPrinter renders it as the athread C source the paper's
//     tool emits (CPE file + MPE file), and
//   * the runtime interpreter executes it on the SW26010Pro simulator,
//     functionally (real data) or in timing mode (logical clocks only).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "schedule/copy_stmt.h"
#include "schedule/extent.h"

namespace sw::codegen {

struct Op;
using OpList = std::vector<Op>;

/// for (var = begin; var < end; ++var) { body }
struct LoopOp {
  std::string var;
  sched::Extent begin;
  sched::Extent end;
  OpList body;
};

/// Peeled single iteration: var = value; { body }  (no loop emitted).
struct AssignOp {
  std::string var;
  sched::Extent value;
  OpList body;
};

/// Issue one non-blocking DMA message (dma_iget / dma_iput); resets the
/// reply slot to zero first, per the protocol in §4.
struct DmaOp {
  sched::CopyStmt stmt;
};

/// Issue one non-blocking RMA broadcast (rma_row_ibcast / rma_col_ibcast);
/// only the CPE matching stmt.senderGuard issues, every CPE in the
/// row/column receives.
struct RmaOp {
  sched::CopyStmt stmt;
};

/// dma_wait_value / rma_wait_value on a reply slot.
struct WaitOp {
  std::string slot;
  bool isRma = false;
  /// RMA only: whether the awaited broadcast travels along a row (true) or
  /// a column (false); tells the runtime which mesh line's channel to poll.
  bool isRowBroadcast = true;
};

/// Mesh-wide synchronisation (athread synch(); required before RMA, §5).
struct SyncOp {};

/// Micro-kernel invocation (§7.2) or the naive loop-nest fallback.
struct ComputeOp {
  sched::ComputeMarkInfo info;
};

/// Element-wise tile operation (alpha/beta handling, fusion §7.3).
struct ElementwiseOp {
  sched::ElementwiseMarkInfo info;
};

struct Op {
  std::variant<LoopOp, AssignOp, DmaOp, RmaOp, WaitOp, SyncOp, ComputeOp,
               ElementwiseOp>
      v;
};

/// One SPM buffer set (§6.3): `phases` > 1 means double-buffered.
struct SpmBufferDecl {
  std::string set;  // "C", "A_dma", "B_dma", "A_rma", "B_rma"
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  int phases = 1;
  /// Byte offset of phase 0 within the CPE's SPM, assigned by the planner.
  std::int64_t spmOffsetBytes = 0;

  [[nodiscard]] std::int64_t bytesPerPhase() const {
    return rows * cols * static_cast<std::int64_t>(sizeof(double));
  }
  [[nodiscard]] std::int64_t totalBytes() const {
    return bytesPerPhase() * phases;
  }
};

/// Shape of a global (main-memory) array, by parameter names.
struct ArrayInfo {
  std::string name;
  /// Batch parameter name if 3D (batched GEMM), empty otherwise.
  std::string batchParam;
  std::string rowsParam;
  std::string colsParam;
};

struct KernelProgram {
  /// Human-readable name (used in generated file headers).
  std::string name;
  /// Structure parameter names in declaration order (e.g. M, N, K[, B]).
  std::vector<std::string> params;
  /// Global arrays accessed by DMA.
  std::vector<ArrayInfo> arrays;
  /// SPM layout.
  std::vector<SpmBufferDecl> buffers;
  /// Per-CPE body.
  OpList body;

  [[nodiscard]] const ArrayInfo& array(const std::string& name) const;
  [[nodiscard]] const SpmBufferDecl& buffer(const std::string& set) const;
  /// Total SPM bytes consumed; must not exceed the architecture's SPM size.
  [[nodiscard]] std::int64_t spmBytesUsed() const;
};

/// Assign SPM offsets to all buffer declarations and verify the layout fits
/// in `spmBytes`.  Throws InputError when the working set exceeds the SPM
/// (the paper's tile-size model guarantees it never does for the shipped
/// configurations).
void planSpmLayout(KernelProgram& program, std::int64_t spmBytes);

/// Count the static operations in a program (loops count as one plus their
/// body); used by tests and the engineering-cost bench.
std::size_t countOps(const OpList& ops);

}  // namespace sw::codegen
