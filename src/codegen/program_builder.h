// Scans a final schedule tree into an executable KernelProgram body —
// the AST-generation phase of §7.1.  The walk is generic over the node
// kinds; all GEMM-specific knowledge lives in the tree itself (extension
// statements, mark payloads, range filters).
#pragma once

#include "codegen/program.h"
#include "schedule/tree.h"

namespace sw::codegen {

/// Produce the per-CPE op list for `tree`.  The tree must validate().
OpList buildProgramBody(const sched::ScheduleTree& tree);

}  // namespace sw::codegen
