#include "codegen/program_builder.h"

#include <vector>

#include "support/error.h"
#include "support/format.h"

namespace sw::codegen {

namespace {

using sched::BandNode;
using sched::CopyKind;
using sched::CopyStmt;
using sched::ExtensionNode;
using sched::FilterElement;
using sched::FilterNode;
using sched::MarkNode;
using sched::NodeKind;
using sched::ScheduleNode;

class Builder {
 public:
  OpList build(const ScheduleNode& node) {
    OpList ops;
    visit(node, ops);
    return ops;
  }

 private:
  std::vector<const ExtensionNode*> extensions_;

  const CopyStmt& lookupCopy(const std::string& name) const {
    for (auto it = extensions_.rbegin(); it != extensions_.rend(); ++it)
      if (const CopyStmt* copy = (*it)->findCopy(name)) return *copy;
    throwInternal(strCat("no extension in scope defines copy '", name, "'"));
  }

  /// The copy statement signalling `slot` (reply slots always belong to an
  /// in-scope copy; missing means a malformed tree).
  const CopyStmt& slotOwner(const std::string& slot) const {
    for (auto it = extensions_.rbegin(); it != extensions_.rend(); ++it)
      for (const CopyStmt& copy : (*it)->copies)
        if (copy.replySlot == slot) return copy;
    throwInternal(strCat("reply slot '", slot, "' has no issuing copy"));
  }

  void emitCopy(const CopyStmt& stmt, OpList& ops) const {
    switch (stmt.kind) {
      case CopyKind::kDmaGet:
      case CopyKind::kDmaPut:
        ops.push_back(Op{DmaOp{stmt}});
        break;
      case CopyKind::kRmaRowBcast:
      case CopyKind::kRmaColBcast:
        ops.push_back(Op{RmaOp{stmt}});
        break;
    }
  }

  void visitFilter(const FilterNode& filter, OpList& ops) {
    OpList* sink = &ops;
    OpList scoped;
    // A range restriction introduces a loop (or a pinned value) that owns
    // the body ops.
    const bool hasRange = filter.range.has_value();
    if (hasRange) sink = &scoped;

    bool emittedChild = false;
    for (const FilterElement& element : filter.elements) {
      switch (element.kind) {
        case FilterElement::Kind::kCopy:
          emitCopy(lookupCopy(element.name), *sink);
          break;
        case FilterElement::Kind::kReplyWait: {
          const CopyStmt& owner = slotOwner(element.name);
          const bool isRma = owner.kind == CopyKind::kRmaRowBcast ||
                             owner.kind == CopyKind::kRmaColBcast;
          sink->push_back(Op{WaitOp{element.name, isRma,
                                    owner.kind == CopyKind::kRmaRowBcast}});
          break;
        }
        case FilterElement::Kind::kSync:
          sink->push_back(Op{SyncOp{}});
          break;
        case FilterElement::Kind::kStatement:
          if (!emittedChild && !filter.children().empty()) {
            visit(filter.onlyChild(), *sink);
            emittedChild = true;
          }
          break;
      }
    }
    // Filters that structure control flow without naming a statement (the
    // peeled steady-state filters of Fig.11) still execute their subtree.
    if (!emittedChild && !filter.children().empty() &&
        filter.onlyChild().kind() != NodeKind::kLeaf)
      visit(filter.onlyChild(), *sink);

    if (hasRange) {
      const sched::RangeRestriction& range = *filter.range;
      if (range.end == range.begin.plus(1)) {
        ops.push_back(Op{AssignOp{range.var, range.begin, std::move(scoped)}});
      } else {
        ops.push_back(
            Op{LoopOp{range.var, range.begin, range.end, std::move(scoped)}});
      }
    }
  }

  void visit(const ScheduleNode& node, OpList& ops) {
    switch (node.kind()) {
      case NodeKind::kDomain:
        visit(node.onlyChild(), ops);
        break;
      case NodeKind::kBand: {
        const auto& band = sched::nodeCast<BandNode>(node);
        // Build loops for unbound members, innermost last.
        OpList* sink = &ops;
        std::vector<OpList> nests;
        std::vector<const sched::BandMember*> loopMembers;
        for (const sched::BandMember& member : band.members) {
          if (member.binding) continue;  // Rid/Cid: predefined per CPE
          loopMembers.push_back(&member);
          nests.emplace_back();
        }
        if (loopMembers.empty()) {
          visit(band.onlyChild(), *sink);
          return;
        }
        // Fill the innermost body, then wrap outwards.
        OpList body;
        visit(band.onlyChild(), body);
        for (std::size_t idx = loopMembers.size(); idx-- > 0;) {
          const sched::BandMember& member = *loopMembers[idx];
          LoopOp loop{member.var, sched::Extent::constant(0), member.extent,
                      std::move(body)};
          body.clear();
          body.push_back(Op{std::move(loop)});
        }
        for (Op& op : body) sink->push_back(std::move(op));
        break;
      }
      case NodeKind::kSequence:
        for (const sched::NodePtr& child : node.children())
          visit(*child, ops);
        break;
      case NodeKind::kFilter:
        visitFilter(sched::nodeCast<FilterNode>(node), ops);
        break;
      case NodeKind::kExtension:
        extensions_.push_back(&sched::nodeCast<ExtensionNode>(node));
        visit(node.onlyChild(), ops);
        extensions_.pop_back();
        break;
      case NodeKind::kMark: {
        const auto& mark = sched::nodeCast<MarkNode>(node);
        if (mark.compute) {
          ops.push_back(Op{ComputeOp{*mark.compute}});
        } else if (mark.elementwise) {
          // Element-wise marks chain (e.g. quantize -> alpha-scale on the
          // same tile): emit the op, then continue into the child.
          ops.push_back(Op{ElementwiseOp{*mark.elementwise}});
          if (!mark.children().empty()) visit(mark.onlyChild(), ops);
        } else if (mark.label == "skipped") {
          // Fig.12a: bypass the original subtree of a fused prologue.
        } else if (!mark.children().empty()) {
          visit(mark.onlyChild(), ops);
        }
        break;
      }
      case NodeKind::kLeaf:
        break;
    }
  }
};

}  // namespace

OpList buildProgramBody(const sched::ScheduleTree& tree) {
  Builder builder;
  return builder.build(tree.root());
}

}  // namespace sw::codegen
