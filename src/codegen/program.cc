#include "codegen/program.h"

#include "support/error.h"
#include "support/format.h"

namespace sw::codegen {

const ArrayInfo& KernelProgram::array(const std::string& name) const {
  for (const ArrayInfo& a : arrays)
    if (a.name == name) return a;
  throwInternal(strCat("unknown array '", name, "'"));
}

const SpmBufferDecl& KernelProgram::buffer(const std::string& set) const {
  for (const SpmBufferDecl& b : buffers)
    if (b.set == set) return b;
  throwInternal(strCat("unknown SPM buffer set '", set, "'"));
}

std::int64_t KernelProgram::spmBytesUsed() const {
  std::int64_t total = 0;
  for (const SpmBufferDecl& b : buffers) total += b.totalBytes();
  return total;
}

void planSpmLayout(KernelProgram& program, std::int64_t spmBytes) {
  std::int64_t offset = 0;
  for (SpmBufferDecl& b : program.buffers) {
    b.spmOffsetBytes = offset;
    offset += b.totalBytes();
  }
  if (offset > spmBytes)
    throwInput(strCat("SPM working set ", offset, " bytes exceeds SPM size ",
                      spmBytes, " bytes"));
}

std::size_t countOps(const OpList& ops) {
  std::size_t count = 0;
  for (const Op& op : ops) {
    ++count;
    if (const auto* loop = std::get_if<LoopOp>(&op.v))
      count += countOps(loop->body);
    else if (const auto* assign = std::get_if<AssignOp>(&op.v))
      count += countOps(assign->body);
  }
  return count;
}

}  // namespace sw::codegen
