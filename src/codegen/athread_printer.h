// Pretty-printer emitting the generated athread C sources (§7): the CPE
// (slave) file containing the per-CPE kernel and the MPE (host) file with
// the spawn wrapper — the same two-file split the paper's tool produces
// for swgcc -mslave / -mhost compilation (§8).
//
// The printer consumes the exact KernelProgram the simulator executes, so
// the printed code and the simulated behaviour cannot diverge.
#pragma once

#include <string>

#include "codegen/program.h"

namespace sw::codegen {

struct GeneratedSources {
  std::string cpe;  // slave file (athread CPE kernel)
  std::string mpe;  // host file (argument marshalling + athread_spawn)
};

GeneratedSources printAthreadSources(const KernelProgram& program);

}  // namespace sw::codegen
