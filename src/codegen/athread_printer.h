// Pretty-printer emitting the generated athread C sources (§7): the CPE
// (slave) file containing the per-CPE kernel and the MPE (host) file with
// the spawn wrapper — the same two-file split the paper's tool produces
// for swgcc -mslave / -mhost compilation (§8).
//
// The printer consumes the exact KernelProgram the simulator executes, so
// the printed code and the simulated behaviour cannot diverge.
#pragma once

#include <string>

#include "codegen/program.h"

namespace sw::codegen {

struct GeneratedSources {
  std::string cpe;  // slave file (athread CPE kernel)
  std::string mpe;  // host file (argument marshalling + athread_spawn)
};

GeneratedSources printAthreadSources(const KernelProgram& program);

/// ABI version baked into native host translation units (exported as the
/// sw_native_abi symbol).  The JIT runner refuses cached shared objects
/// whose ABI differs; bump this whenever the entry-point contract or the
/// counters struct emitted by printNativeHostSource changes.
inline constexpr long kNativeHostAbiVersion = 1;

/// Render `program` as one self-contained host C translation unit for the
/// native JIT engine: the athread DMA/RMA/sync intrinsics are replaced by
/// clamped memcpy loops, pthread barriers and per-slot broadcast channels
/// that mirror the simulator runtimes op for op, so the C results and the
/// discrete counters (DMA messages/bytes, RMA broadcasts/bytes, syncs,
/// micro-kernel calls, flops) are bit-identical to the tree-walk and plan
/// engines.  The TU exports
///   int sw_native_run(const long long *params, double *const *arrays,
///                     double alpha, double beta, sw_counters *totals)
/// with params/arrays in program declaration order, plus
///   long sw_native_abi(void)
/// returning kNativeHostAbiVersion.
std::string printNativeHostSource(const KernelProgram& program);

}  // namespace sw::codegen
