#include "runtime/interpreter.h"

#include <algorithm>

#include "kernel/microkernel.h"
#include "support/error.h"
#include "support/format.h"

namespace sw::rt {

namespace {

using codegen::AssignOp;
using codegen::ComputeOp;
using codegen::DmaOp;
using codegen::ElementwiseOp;
using codegen::KernelProgram;
using codegen::LoopOp;
using codegen::Op;
using codegen::OpList;
using codegen::RmaOp;
using codegen::SyncOp;
using codegen::WaitOp;
using sched::ComputeMarkInfo;
using sched::CopyKind;
using sched::CopyStmt;
using sched::ElementwiseMarkInfo;
using sched::SpmBufferRef;

class Interpreter {
 public:
  Interpreter(const KernelProgram& program,
              const std::map<std::string, std::int64_t>& params,
              const ExecScalars& scalars, sunway::CpeServices& services)
      : program_(program), scalars_(scalars), services_(services) {
    env_ = params;
    env_["Rid"] = services.rid();
    env_["Cid"] = services.cid();
  }

  void run() { execute(program_.body); }

 private:
  void execute(const OpList& ops) {
    for (const Op& op : ops) std::visit([this](const auto& o) { exec(o); },
                                        op.v);
  }

  /// RAII save/restore of one env binding, so a shadowed outer variable
  /// reappears (instead of vanishing) when the inner scope exits.
  class ScopedBinding {
   public:
    ScopedBinding(std::map<std::string, std::int64_t>& env,
                  const std::string& var)
        : env_(env), var_(var) {
      auto it = env_.find(var_);
      if (it != env_.end()) {
        hadOuter_ = true;
        outerValue_ = it->second;
      }
    }
    ~ScopedBinding() {
      if (hadOuter_)
        env_[var_] = outerValue_;
      else
        env_.erase(var_);
    }
    ScopedBinding(const ScopedBinding&) = delete;
    ScopedBinding& operator=(const ScopedBinding&) = delete;

   private:
    std::map<std::string, std::int64_t>& env_;
    const std::string& var_;
    bool hadOuter_ = false;
    std::int64_t outerValue_ = 0;
  };

  void exec(const LoopOp& loop) {
    const std::int64_t begin = loop.begin.evaluate(env_);
    const std::int64_t end = loop.end.evaluate(env_);
    ScopedBinding scope(env_, loop.var);
    for (std::int64_t v = begin; v < end; ++v) {
      env_[loop.var] = v;
      execute(loop.body);
    }
  }

  void exec(const AssignOp& assign) {
    const std::int64_t value = assign.value.evaluate(env_);
    ScopedBinding scope(env_, assign.var);
    env_[assign.var] = value;
    execute(assign.body);
  }

  /// Resolve a buffer reference to an SPM byte offset, honouring the
  /// double-buffering phase selector of §6.3.
  std::int64_t resolveBuffer(const SpmBufferRef& ref) const {
    const codegen::SpmBufferDecl& decl = program_.buffer(ref.set);
    std::int64_t phase = ref.phaseOffset;
    if (ref.phaseVar) {
      auto it = env_.find(*ref.phaseVar);
      SW_CHECK(it != env_.end(),
               strCat("phase variable '", *ref.phaseVar, "' unbound"));
      phase += it->second;
    }
    phase = ((phase % decl.phases) + decl.phases) % decl.phases;
    return decl.spmOffsetBytes + phase * decl.bytesPerPhase();
  }

  /// Reject malformed DMA requests at dispatch, naming the statement, so a
  /// bad schedule fails as an InputError instead of tripping downstream
  /// SW_CHECKs (or silently corrupting timing-only runs, which never
  /// dereference and would otherwise accept anything).
  void validateDma(const sunway::DmaRequest& request,
                   const CopyStmt& stmt) const {
    const auto bad = [&](const std::string& what) {
      throw InputError(strCat("DMA statement '", stmt.name, "' on array '",
                              request.array, "': ", what));
    };
    if (request.array.empty()) bad("empty array name");
    // Clamped edge-tile requests may legally degenerate to an empty tile
    // (they still signal the reply slot); anything else must be positive.
    if (request.tileRows < 0 || request.tileCols < 0 ||
        (!stmt.clampToBounds &&
         (request.tileRows == 0 || request.tileCols == 0)))
      bad(strCat("non-positive tile shape ", request.tileRows, "x",
                 request.tileCols));
    if (request.spmOffsetBytes < 0)
      bad(strCat("negative SPM offset ", request.spmOffsetBytes));
    if (request.rowStart < 0 || request.colStart < 0)
      bad(strCat("negative tile origin (", request.rowStart, ", ",
                 request.colStart, ")"));
    if (request.batchIndex < 0)
      bad(strCat("negative batch index ", request.batchIndex));
    if (request.slot.empty()) bad("empty reply slot");
    if (!services_.knowsArray(request.array))
      bad("unknown array (not registered in host memory)");
  }

  /// Value of a structure parameter (or any bound schedule variable).
  std::int64_t envValue(const std::string& name) const {
    auto it = env_.find(name);
    SW_CHECK(it != env_.end(), strCat("parameter '", name, "' unbound"));
    return it->second;
  }

  void exec(const DmaOp& op) {
    const CopyStmt& stmt = op.stmt;
    sunway::DmaRequest request;
    request.isPut = stmt.kind == CopyKind::kDmaPut;
    request.array = stmt.array;
    request.batchIndex =
        stmt.batchIndex ? stmt.batchIndex->evaluate(env_) : 0;
    request.rowStart = stmt.rowStart.evaluate(env_);
    request.colStart = stmt.colStart.evaluate(env_);
    request.tileRows = stmt.tileRows;
    request.tileCols = stmt.tileCols;
    if (stmt.clampToBounds) {
      // Edge tiles: transfer min(tile, bound - offset) per dimension, at
      // the full-tile SPM row stride.  A tile entirely past the bound
      // becomes an empty transfer that still signals its reply slot.
      request.spmRowStrideElems = stmt.tileCols;
      request.tileRows = std::min(
          request.tileRows, envValue(stmt.rowsParam) - request.rowStart);
      request.tileCols = std::min(
          request.tileCols, envValue(stmt.colsParam) - request.colStart);
      if (request.tileRows <= 0 || request.tileCols <= 0) {
        request.tileRows = 0;
        request.tileCols = 0;
        request.rowStart = 0;
        request.colStart = 0;
      }
    }
    request.spmOffsetBytes = resolveBuffer(stmt.buffer);
    request.slot = stmt.replySlot;
    validateDma(request, stmt);
    pendingDma_[request.slot] = request;
    services_.dmaIssue(request);
  }

  void exec(const RmaOp& op) {
    const CopyStmt& stmt = op.stmt;
    SW_CHECK(stmt.senderGuard.has_value(), "RMA statement without a guard");
    bool isSender = services_.guardAlwaysTrue();
    if (!isSender) {
      auto it = env_.find(stmt.senderGuard->meshVar);
      SW_CHECK(it != env_.end(), strCat("mesh variable '",
                                        stmt.senderGuard->meshVar,
                                        "' unbound"));
      isSender = it->second == stmt.senderGuard->equals.evaluate(env_);
    }
    if (!isSender) return;  // receivers only wait on replyr
    sunway::RmaRequest request;
    request.kind = stmt.kind == CopyKind::kRmaRowBcast
                       ? sunway::RmaKind::kRowBroadcast
                       : sunway::RmaKind::kColBroadcast;
    request.isSender = true;
    request.bytes =
        stmt.sizeElements() * static_cast<std::int64_t>(sizeof(double));
    request.srcSpmOffsetBytes = resolveBuffer(stmt.rmaSource);
    request.dstSpmOffsetBytes = resolveBuffer(stmt.buffer);
    request.slot = stmt.replySlot;
    const auto bad = [&](const std::string& what) {
      throw InputError(
          strCat("RMA statement '", stmt.name, "': ", what));
    };
    if (request.bytes <= 0)
      bad(strCat("non-positive transfer size ", request.bytes, " bytes"));
    if (request.srcSpmOffsetBytes < 0 || request.dstSpmOffsetBytes < 0)
      bad(strCat("negative SPM offset (src ", request.srcSpmOffsetBytes,
                 ", dst ", request.dstSpmOffsetBytes, ")"));
    if (request.slot.empty()) bad("empty reply slot");
    services_.rmaIssue(request);
  }

  void exec(const WaitOp& op) {
    if (op.isRma) {
      services_.waitSlot(op.slot, /*isRma=*/true, op.isRowBroadcast);
      return;
    }
    // DMA replies can fail transiently under fault injection (dropped or
    // corrupted tiles).  Re-issue the recorded request with exponential
    // backoff; a site that keeps failing past the budget escalates to a
    // ProtocolError so the service layer can degrade.
    for (int attempt = 0;; ++attempt) {
      try {
        services_.waitSlot(op.slot, /*isRma=*/false, op.isRowBroadcast);
        return;
      } catch (const TransientError& error) {
        auto pending = pendingDma_.find(op.slot);
        if (pending == pendingDma_.end()) throw;  // nothing to re-issue
        if (attempt >= kMaxDmaRetries)
          throw ProtocolError(strCat("DMA on slot '", op.slot,
                                     "' still failing after ", attempt,
                                     " retries: ", error.what()));
        services_.noteDmaRetry();
        services_.stallFor(kRetryBackoffSeconds * static_cast<double>(
                                                      1 << attempt));
        services_.dmaIssue(pending->second);
      }
    }
  }

  void exec(const SyncOp&) { services_.sync(); }

  void exec(const ComputeOp& op) {
    const ComputeMarkInfo& info = op.info;
    // Edge tiles: clamp each dimension to the valid extent; a fully
    // out-of-range tile skips the kernel (and charges zero flops).
    std::int64_t m = info.m, n = info.n, k = info.k;
    if (info.clampM)
      m = std::min(m, envValue(info.clampM->boundParam) -
                          info.clampM->origin.evaluate(env_));
    if (info.clampN)
      n = std::min(n, envValue(info.clampN->boundParam) -
                          info.clampN->origin.evaluate(env_));
    if (info.clampK)
      k = std::min(k, envValue(info.clampK->boundParam) -
                          info.clampK->origin.evaluate(env_));
    if (m <= 0 || n <= 0 || k <= 0) return;
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(n) * static_cast<double>(k);
    if (info.kind == ComputeMarkInfo::Kind::kAsm)
      services_.computeTimeMicro(flops, info.mr, info.nr);
    else
      services_.computeTime(flops, sunway::ComputeRate::kNaive);
    if (!services_.functional()) return;
    double* c = services_.spmPtr(resolveBuffer(info.c));
    double* a = services_.spmPtr(resolveBuffer(info.a));
    double* b = services_.spmPtr(resolveBuffer(info.b));
    if (m != info.m || n != info.n || k != info.k) {
      // Partial tile at full-tile SPM strides: strided edge kernel, same
      // per-element accumulation order as the full-shape kernels.
      kernel::dgemmEdgeKernel(c, a, b, m, n, k, /*lda=*/info.k,
                              /*ldb=*/info.n, /*ldc=*/info.n);
      return;
    }
    if (info.kind == ComputeMarkInfo::Kind::kAsm)
      kernel::dgemmMicroKernelVariant(c, a, b, info.m, info.n, info.k,
                                      info.mr, info.nr);
    else
      kernel::dgemmNaiveKernel(c, a, b, info.m, info.n, info.k);
  }

  void exec(const ElementwiseOp& op) {
    const ElementwiseMarkInfo& info = op.info;
    const std::int64_t count = info.rows * info.cols;
    services_.computeTime(static_cast<double>(count),
                          sunway::ComputeRate::kElementwise);
    if (!services_.functional()) return;
    double* tile = services_.spmPtr(resolveBuffer(info.target));
    switch (info.op) {
      case ElementwiseMarkInfo::Op::kBetaScaleC:
        kernel::tileScale(tile, count, scalars_.beta);
        break;
      case ElementwiseMarkInfo::Op::kAlphaScaleA:
        kernel::tileScale(tile, count, scalars_.alpha);
        break;
      case ElementwiseMarkInfo::Op::kQuantize:
        kernel::tileQuantize(tile, count);
        break;
      case ElementwiseMarkInfo::Op::kRelu:
        kernel::tileRelu(tile, count);
        break;
      case ElementwiseMarkInfo::Op::kTranspose: {
        SW_CHECK(info.source.has_value(), "transpose mark without source");
        const double* src = services_.spmPtr(resolveBuffer(*info.source));
        kernel::tileTranspose(tile, src, info.rows, info.cols);
        break;
      }
    }
  }

  /// Retry budget for transiently failed DMA and the base backoff stall
  /// (doubles per attempt: 1 µs, 2 µs, 4 µs of simulated time).
  static constexpr int kMaxDmaRetries = 3;
  static constexpr double kRetryBackoffSeconds = 1e-6;

  const KernelProgram& program_;
  const ExecScalars scalars_;
  sunway::CpeServices& services_;
  std::map<std::string, std::int64_t> env_;
  /// Last issued DMA per reply slot, kept so a transiently failed wait can
  /// re-issue the exact same transfer.
  std::map<std::string, sunway::DmaRequest> pendingDma_;
};

}  // namespace

void runCpeProgram(const KernelProgram& program,
                   const std::map<std::string, std::int64_t>& params,
                   const ExecScalars& scalars,
                   sunway::CpeServices& services) {
  Interpreter(program, params, scalars, services).run();
}

}  // namespace sw::rt
