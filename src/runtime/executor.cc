#include "runtime/executor.h"

#include <algorithm>

#include "runtime/plan.h"
#include "sunway/estimator.h"
#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/trace.h"

namespace sw::rt {

namespace {

/// Shape bound into `params`, if present (0 when the program has no such
/// parameter — e.g. a non-GEMM kernel).
std::int64_t paramOrZero(const std::map<std::string, std::int64_t>& params,
                         const char* name) {
  auto it = params.find(name);
  return it == params.end() ? 0 : it->second;
}

}  // namespace

perf::PerfReport buildRunReport(
    const codegen::KernelProgram& program, const std::string& engine,
    const std::map<std::string, std::int64_t>& params, double wallSeconds,
    int cpeCount, double reportedFlops, const sunway::CpeCounters& totals,
    const sunway::ArchConfig& config) {
  perf::RunSample sample;
  sample.kernel = program.name;
  sample.engine = engine;
  sample.m = paramOrZero(params, "M");
  sample.n = paramOrZero(params, "N");
  sample.k = paramOrZero(params, "K");
  sample.batch = paramOrZero(params, "BATCH");
  sample.wallSeconds = wallSeconds;
  sample.cpeCount = cpeCount;
  sample.reportedFlops = reportedFlops;
  sample.computeSeconds = totals.computeSeconds;
  sample.dmaStallSeconds = totals.dmaStallSeconds;
  sample.rmaStallSeconds = totals.rmaStallSeconds;
  sample.syncStallSeconds = totals.syncStallSeconds;
  sample.retryStallSeconds = totals.retryStallSeconds;
  sample.dmaBusySeconds = totals.dmaBusySeconds;
  sample.rmaBusySeconds = totals.rmaBusySeconds;
  sample.dmaMessages = totals.dmaMessages;
  sample.dmaBytes = totals.dmaBytes;
  sample.rmaBroadcastsSent = totals.rmaBroadcastsSent;
  sample.rmaBytesSent = totals.rmaBytesSent;
  sample.syncs = totals.syncs;
  sample.microKernelCalls = totals.microKernelCalls;
  sample.faultsInjected = totals.faultsInjected;
  sample.dmaRetries = totals.dmaRetries;
  return perf::buildPerfReport(sample, machineModelFromArch(config));
}

perf::MachineModel machineModelFromArch(const sunway::ArchConfig& config) {
  perf::MachineModel machine;
  machine.peakGflops = config.peakFlops() * config.asmKernelEfficiency / 1e9;
  machine.peakDmaGBps = config.ddrBandwidthBytesPerSec / 1e9;
  machine.peakRmaGBps = config.rmaBandwidthBytesPerSec / 1e9;
  machine.meshSize = config.meshSize();
  return machine;
}

perf::MachineModel machineModelFromArch(const sunway::ArchConfig& config,
                                        int concurrentGroups) {
  if (concurrentGroups < 1) concurrentGroups = 1;
  perf::MachineModel machine = machineModelFromArch(config);
  const double groups = static_cast<double>(concurrentGroups);
  machine.peakGflops *= groups;
  machine.peakDmaGBps =
      groups * config.groupDdrBandwidth(concurrentGroups) / 1e9;
  machine.meshSize = concurrentGroups * config.meshSize();
  machine.coreGroups = concurrentGroups;
  return machine;
}

metrics::DerivedRunMetrics deriveRunMetrics(
    const sunway::CpeCounters& totals, double wallSeconds, int cpeCount,
    const codegen::KernelProgram& program, std::int64_t spmBudgetBytes) {
  metrics::DerivedRunMetrics m;
  const double busy = totals.dmaBusySeconds + totals.rmaBusySeconds;
  const double hidden = std::clamp(busy - totals.waitStallSeconds, 0.0, busy);
  // safePct maps an idle engine (busy == 0) to 0%, never NaN.
  m.overlapPct = metrics::safePct(hidden, busy);
  const double active = totals.computeSeconds + totals.waitStallSeconds;
  m.stallPct = metrics::safePct(totals.waitStallSeconds, active);
  const double aggregateWall = wallSeconds * static_cast<double>(cpeCount);
  m.computePct = std::min(
      100.0, metrics::safePct(totals.computeSeconds, aggregateWall));
  m.spmHighWaterBytes = program.spmBytesUsed();
  m.spmBudgetBytes = spmBudgetBytes;
  if (spmBudgetBytes > 0)
    m.spmBudgetPct = 100.0 * static_cast<double>(m.spmHighWaterBytes) /
                     static_cast<double>(spmBudgetBytes);
  for (const codegen::SpmBufferDecl& buffer : program.buffers)
    m.perBufferBytes[buffer.set] = buffer.totalBytes();
  return m;
}

std::map<std::string, std::int64_t> bindParams(
    const codegen::KernelProgram& program, std::int64_t m, std::int64_t n,
    std::int64_t k, std::int64_t batch) {
  std::map<std::string, std::int64_t> params;
  for (const std::string& name : program.params) {
    if (name == "M")
      params[name] = m;
    else if (name == "N")
      params[name] = n;
    else if (name == "K")
      params[name] = k;
    else if (name == "BATCH")
      params[name] = batch;
    else
      throwInternal(strCat("unknown program parameter '", name, "'"));
  }
  return params;
}

double gemmFlops(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::int64_t batch) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k) * static_cast<double>(batch);
}

RunOutcome runOnMesh(sunway::MeshSimulator& mesh,
                     const codegen::KernelProgram& program,
                     const std::map<std::string, std::int64_t>& params,
                     const ExecScalars& scalars, double reportedFlops,
                     const ExecutionPlan* plan) {
  trace::Span span("run.mesh",
                   {trace::arg("kernel", program.name),
                    trace::arg("engine", plan != nullptr ? "plan" : "tree"),
                    trace::arg("functional",
                               mesh.functional() ? "true" : "false")},
                   "run");
  sunway::MeshRunResult meshResult =
      mesh.run([&](sunway::CpeServices& services) {
        if (plan != nullptr)
          runCpePlan(*plan, params, scalars, services);
        else
          runCpeProgram(program, params, scalars, services);
      });
  RunOutcome outcome;
  outcome.engine = plan != nullptr ? "plan" : "tree";
  outcome.seconds = meshResult.seconds;
  outcome.gflops = metrics::safeDiv(reportedFlops, meshResult.seconds) / 1e9;
  outcome.counters = meshResult.totals;
  outcome.metrics =
      deriveRunMetrics(meshResult.totals, meshResult.seconds,
                       mesh.config().meshSize(), program,
                       mesh.config().spmBytes);
  outcome.metrics.publish(metrics::MetricsRegistry::global(), "run.mesh.");
  outcome.report =
      buildRunReport(program, "mesh", params, meshResult.seconds,
                     mesh.config().meshSize(), reportedFlops,
                     meshResult.totals, mesh.config());
  // Resilience counters accumulate across runs (unlike the per-run gauges
  // above) so a degrading service call keeps the full fault history.
  if (meshResult.totals.faultsInjected > 0)
    metrics::MetricsRegistry::global().add(
        "fault.injected", static_cast<double>(meshResult.totals.faultsInjected));
  if (meshResult.totals.dmaRetries > 0)
    metrics::MetricsRegistry::global().add(
        "dma.retries", static_cast<double>(meshResult.totals.dmaRetries));
  SW_DEBUG("executor", "event=mesh_run kernel=", program.name,
           " sim_seconds=", outcome.seconds, " gflops=", outcome.gflops,
           " overlap_pct=", outcome.metrics.overlapPct,
           " stall_pct=", outcome.metrics.stallPct);
  return outcome;
}

RunOutcome estimateTiming(const sunway::ArchConfig& config,
                          const codegen::KernelProgram& program,
                          const std::map<std::string, std::int64_t>& params,
                          double reportedFlops, const ExecutionPlan* plan) {
  trace::Span span("run.estimate",
                   {trace::arg("kernel", program.name),
                    trace::arg("engine", plan != nullptr ? "plan" : "tree")},
                   "run");
  sunway::SymmetricCpeServices services(config);
  if (plan != nullptr)
    runCpePlan(*plan, params, ExecScalars{}, services);
  else
    runCpeProgram(program, params, ExecScalars{}, services);
  RunOutcome outcome;
  outcome.engine = plan != nullptr ? "plan" : "tree";
  outcome.seconds = services.totalSeconds();
  outcome.gflops = metrics::safeDiv(reportedFlops, outcome.seconds) / 1e9;
  outcome.counters = services.counters();
  outcome.metrics = deriveRunMetrics(outcome.counters, outcome.seconds,
                                     /*cpeCount=*/1, program,
                                     config.spmBytes);
  outcome.metrics.publish(metrics::MetricsRegistry::global(),
                          "run.estimate.");
  outcome.report =
      buildRunReport(program, "estimator", params, outcome.seconds,
                     /*cpeCount=*/1, reportedFlops, outcome.counters,
                     config);
  SW_DEBUG("executor", "event=estimate kernel=", program.name,
           " sim_seconds=", outcome.seconds, " gflops=", outcome.gflops,
           " overlap_pct=", outcome.metrics.overlapPct,
           " stall_pct=", outcome.metrics.stallPct);
  return outcome;
}

}  // namespace sw::rt
