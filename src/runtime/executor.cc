#include "runtime/executor.h"

#include "sunway/estimator.h"
#include "support/error.h"
#include "support/format.h"

namespace sw::rt {

std::map<std::string, std::int64_t> bindParams(
    const codegen::KernelProgram& program, std::int64_t m, std::int64_t n,
    std::int64_t k, std::int64_t batch) {
  std::map<std::string, std::int64_t> params;
  for (const std::string& name : program.params) {
    if (name == "M")
      params[name] = m;
    else if (name == "N")
      params[name] = n;
    else if (name == "K")
      params[name] = k;
    else if (name == "BATCH")
      params[name] = batch;
    else
      throwInternal(strCat("unknown program parameter '", name, "'"));
  }
  return params;
}

double gemmFlops(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::int64_t batch) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k) * static_cast<double>(batch);
}

RunOutcome runOnMesh(sunway::MeshSimulator& mesh,
                     const codegen::KernelProgram& program,
                     const std::map<std::string, std::int64_t>& params,
                     const ExecScalars& scalars, double reportedFlops) {
  sunway::MeshRunResult meshResult =
      mesh.run([&](sunway::CpeServices& services) {
        runCpeProgram(program, params, scalars, services);
      });
  RunOutcome outcome;
  outcome.seconds = meshResult.seconds;
  outcome.gflops = reportedFlops / meshResult.seconds / 1e9;
  outcome.counters = meshResult.totals;
  return outcome;
}

RunOutcome estimateTiming(const sunway::ArchConfig& config,
                          const codegen::KernelProgram& program,
                          const std::map<std::string, std::int64_t>& params,
                          double reportedFlops) {
  sunway::SymmetricCpeServices services(config);
  runCpeProgram(program, params, ExecScalars{}, services);
  RunOutcome outcome;
  outcome.seconds = services.totalSeconds();
  outcome.gflops = reportedFlops / outcome.seconds / 1e9;
  outcome.counters = services.counters();
  return outcome;
}

}  // namespace sw::rt
