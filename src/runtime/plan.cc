#include "runtime/plan.h"

#include <algorithm>
#include <utility>

#include "kernel/microkernel.h"
#include "support/error.h"
#include "support/format.h"
#include "support/math_util.h"

namespace sw::rt {

namespace {

using codegen::AssignOp;
using codegen::ComputeOp;
using codegen::DmaOp;
using codegen::ElementwiseOp;
using codegen::KernelProgram;
using codegen::LoopOp;
using codegen::Op;
using codegen::OpList;
using codegen::RmaOp;
using codegen::SyncOp;
using codegen::WaitOp;
using sched::ComputeMarkInfo;
using sched::CopyKind;
using sched::CopyStmt;
using sched::ElementwiseMarkInfo;
using sched::SpmBufferRef;

/// One-shot lowering pass: resolves every name (variables, buffers, reply
/// slots, arrays) and validates every statement, so the executor's failure
/// surface shrinks to data-dependent checks (negative tile origins, unknown
/// arrays at bind time, injected faults).
class Lowerer {
 public:
  explicit Lowerer(const KernelProgram& program)
      : program_(program), plan_(std::make_shared<ExecutionPlan>()) {
    plan_->name = program.name;
  }

  std::shared_ptr<const ExecutionPlan> lower() {
    for (const std::string& param : program_.params)
      plan_->paramSlots.emplace_back(param, pushVar(param));
    plan_->ridSlot = pushVar("Rid");
    plan_->cidSlot = pushVar("Cid");
    lowerOps(program_.body);
    plan_->frameSlots = nextSlot_;
    return std::move(plan_);
  }

 private:
  // --- frame-slot scoping: each binding site gets a fresh slot; inner
  // bindings shadow outer ones for the duration of their body only ---

  int pushVar(const std::string& name) {
    const int slot = nextSlot_++;
    scope_[name].push_back(slot);
    return slot;
  }

  void popVar(const std::string& name) { scope_[name].pop_back(); }

  int slotOf(const std::string& name) const {
    auto it = scope_.find(name);
    if (it == scope_.end() || it->second.empty())
      throw InputError(strCat("plan lowering for '", program_.name,
                              "': dimension '", name, "' is unbound"));
    return it->second.back();
  }

  // --- pools ---

  int internExtent(const sched::Extent& extent) {
    for (std::size_t i = 0; i < plan_->extents.size(); ++i)
      if (plan_->extents[i] == extent) return static_cast<int>(i);
    plan_->extents.push_back(extent);
    return static_cast<int>(plan_->extents.size()) - 1;
  }

  int internName(std::vector<std::string>& table, const std::string& name) {
    for (std::size_t i = 0; i < table.size(); ++i)
      if (table[i] == name) return static_cast<int>(i);
    table.push_back(name);
    return static_cast<int>(table.size()) - 1;
  }

  /// Flatten an AffineExpr into the shared pools.  Floordiv numerators are
  /// lowered first so every expression's term/div ranges stay contiguous.
  int lowerExpr(const poly::AffineExpr& expr) {
    std::vector<PlanDivTerm> divs;
    divs.reserve(expr.floorDivTerms().size());
    for (const poly::FloorDivTerm& d : expr.floorDivTerms())
      divs.push_back({d.coeff, lowerExpr(*d.numerator), d.denominator});

    PlanExpr out;
    out.constant = expr.constantTerm();
    out.termsBegin = static_cast<int>(plan_->terms.size());
    for (const auto& [dim, coeff] : expr.coefficients())
      plan_->terms.push_back({slotOf(dim), coeff});
    out.termsEnd = static_cast<int>(plan_->terms.size());
    out.divsBegin = static_cast<int>(plan_->divTerms.size());
    for (const PlanDivTerm& d : divs) plan_->divTerms.push_back(d);
    out.divsEnd = static_cast<int>(plan_->divTerms.size());
    plan_->exprs.push_back(out);
    return static_cast<int>(plan_->exprs.size()) - 1;
  }

  /// Resolve a buffer reference against the program's SPM layout; a static
  /// phase folds into the base so the executor skips the mod entirely.
  PlanBufferRef lowerBuffer(const SpmBufferRef& ref) {
    const codegen::SpmBufferDecl& decl = program_.buffer(ref.set);
    PlanBufferRef out;
    out.phases = decl.phases;
    out.stride = decl.bytesPerPhase();
    if (ref.phaseVar) {
      out.phaseSlot = slotOf(*ref.phaseVar);
      out.base = decl.spmOffsetBytes;
      out.phaseOffset = ref.phaseOffset;
    } else {
      out.phaseSlot = -1;
      out.base = decl.spmOffsetBytes +
                 floorMod(ref.phaseOffset, decl.phases) * decl.bytesPerPhase();
    }
    return out;
  }

  void emit(PlanOpcode op, int a) { plan_->code.push_back({op, a}); }

  // --- op lowering ---

  void lowerOps(const OpList& ops) {
    for (const Op& op : ops)
      std::visit([this](const auto& o) { lowerOp(o); }, op.v);
  }

  void lowerOp(const LoopOp& loop) {
    PlanLoop l;
    l.beginExtent = internExtent(loop.begin);
    l.endExtent = internExtent(loop.end);
    l.varSlot = pushVar(loop.var);
    l.limitSlot = nextSlot_++;
    const int index = static_cast<int>(plan_->loops.size());
    plan_->loops.push_back(l);
    emit(PlanOpcode::kLoop, index);
    plan_->loops[static_cast<std::size_t>(index)].bodyPc =
        static_cast<int>(plan_->code.size());
    lowerOps(loop.body);
    emit(PlanOpcode::kLoopEnd, index);
    plan_->loops[static_cast<std::size_t>(index)].endPc =
        static_cast<int>(plan_->code.size());
    popVar(loop.var);
  }

  void lowerOp(const AssignOp& assign) {
    PlanAssign a;
    a.extent = internExtent(assign.value);
    a.varSlot = pushVar(assign.var);
    plan_->assigns.push_back(a);
    emit(PlanOpcode::kAssign, static_cast<int>(plan_->assigns.size()) - 1);
    lowerOps(assign.body);
    popVar(assign.var);
  }

  void lowerOp(const DmaOp& op) {
    const CopyStmt& stmt = op.stmt;
    const auto bad = [&](const std::string& what) {
      throw InputError(strCat("DMA statement '", stmt.name, "' on array '",
                              stmt.array, "': ", what));
    };
    if (stmt.array.empty()) bad("empty array name");
    if (stmt.tileRows <= 0 || stmt.tileCols <= 0)
      bad(strCat("non-positive tile shape ", stmt.tileRows, "x",
                 stmt.tileCols));
    if (stmt.replySlot.empty()) bad("empty reply slot");

    PlanDma d;
    d.base.isPut = stmt.kind == CopyKind::kDmaPut;
    d.base.array = stmt.array;
    d.base.tileRows = stmt.tileRows;
    d.base.tileCols = stmt.tileCols;
    d.base.slot = stmt.replySlot;
    d.slot = internName(plan_->slotNames, stmt.replySlot);
    d.array = internName(plan_->arrayNames, stmt.array);
    if (stmt.batchIndex) d.batchExpr = lowerExpr(*stmt.batchIndex);
    d.rowExpr = lowerExpr(stmt.rowStart);
    d.colExpr = lowerExpr(stmt.colStart);
    if (stmt.clampToBounds) {
      // Edge tiles: the executor clamps rows/cols against the shape
      // parameters at issue time, keeping the full-tile SPM row stride.
      d.clamp = true;
      d.base.spmRowStrideElems = stmt.tileCols;
      d.rowBoundSlot = slotOf(stmt.rowsParam);
      d.colBoundSlot = slotOf(stmt.colsParam);
    }
    d.buffer = lowerBuffer(stmt.buffer);
    if (d.buffer.base < 0)
      bad(strCat("negative SPM offset ", d.buffer.base));
    d.stmt = internName(plan_->stmtNames, stmt.name);
    plan_->dmas.push_back(std::move(d));
    emit(PlanOpcode::kDma, static_cast<int>(plan_->dmas.size()) - 1);
  }

  void lowerOp(const RmaOp& op) {
    const CopyStmt& stmt = op.stmt;
    SW_CHECK(stmt.senderGuard.has_value(), "RMA statement without a guard");
    const auto bad = [&](const std::string& what) {
      throw InputError(strCat("RMA statement '", stmt.name, "': ", what));
    };
    PlanRma r;
    r.base.kind = stmt.kind == CopyKind::kRmaRowBcast
                      ? sunway::RmaKind::kRowBroadcast
                      : sunway::RmaKind::kColBroadcast;
    r.base.isSender = true;
    r.base.bytes =
        stmt.sizeElements() * static_cast<std::int64_t>(sizeof(double));
    r.base.slot = stmt.replySlot;
    if (r.base.bytes <= 0)
      bad(strCat("non-positive transfer size ", r.base.bytes, " bytes"));
    if (stmt.replySlot.empty()) bad("empty reply slot");
    r.slot = internName(plan_->slotNames, stmt.replySlot);
    r.guardSlot = slotOf(stmt.senderGuard->meshVar);
    r.guardExpr = lowerExpr(stmt.senderGuard->equals);
    r.src = lowerBuffer(stmt.rmaSource);
    r.dst = lowerBuffer(stmt.buffer);
    if (r.src.base < 0 || r.dst.base < 0)
      bad(strCat("negative SPM offset (src ", r.src.base, ", dst ",
                 r.dst.base, ")"));
    r.stmt = internName(plan_->stmtNames, stmt.name);
    plan_->rmas.push_back(std::move(r));
    emit(PlanOpcode::kRma, static_cast<int>(plan_->rmas.size()) - 1);
  }

  void lowerOp(const WaitOp& op) {
    PlanWait w;
    w.slot = internName(plan_->slotNames, op.slot);
    w.isRowBroadcast = op.isRowBroadcast;
    plan_->waits.push_back(w);
    emit(op.isRma ? PlanOpcode::kWaitRma : PlanOpcode::kWaitDma,
         static_cast<int>(plan_->waits.size()) - 1);
  }

  void lowerOp(const SyncOp&) { emit(PlanOpcode::kSync, 0); }

  void lowerOp(const ComputeOp& op) {
    const ComputeMarkInfo& info = op.info;
    PlanCompute c;
    c.isAsm = info.kind == ComputeMarkInfo::Kind::kAsm;
    c.mr = info.mr;
    c.nr = info.nr;
    c.m = info.m;
    c.n = info.n;
    c.k = info.k;
    c.flops = 2.0 * static_cast<double>(info.m) *
              static_cast<double>(info.n) * static_cast<double>(info.k);
    if (info.clampM) {
      c.mOriginExpr = lowerExpr(info.clampM->origin);
      c.mBoundSlot = slotOf(info.clampM->boundParam);
    }
    if (info.clampN) {
      c.nOriginExpr = lowerExpr(info.clampN->origin);
      c.nBoundSlot = slotOf(info.clampN->boundParam);
    }
    if (info.clampK) {
      c.kOriginExpr = lowerExpr(info.clampK->origin);
      c.kBoundSlot = slotOf(info.clampK->boundParam);
    }
    c.a = lowerBuffer(info.a);
    c.b = lowerBuffer(info.b);
    c.c = lowerBuffer(info.c);
    plan_->computes.push_back(c);
    emit(PlanOpcode::kCompute, static_cast<int>(plan_->computes.size()) - 1);
  }

  void lowerOp(const ElementwiseOp& op) {
    const ElementwiseMarkInfo& info = op.info;
    PlanElementwise e;
    e.op = info.op;
    e.rows = info.rows;
    e.cols = info.cols;
    e.target = lowerBuffer(info.target);
    if (info.op == ElementwiseMarkInfo::Op::kTranspose) {
      SW_CHECK(info.source.has_value(), "transpose mark without source");
      e.source = lowerBuffer(*info.source);
    }
    plan_->elementwises.push_back(e);
    emit(PlanOpcode::kElementwise,
         static_cast<int>(plan_->elementwises.size()) - 1);
  }

  const KernelProgram& program_;
  std::shared_ptr<ExecutionPlan> plan_;
  std::map<std::string, std::vector<int>> scope_;
  int nextSlot_ = 0;
};

/// Register-machine executor over one CPE's frame.  All name resolution
/// happened at lowering; the bind step (constructor) maps the plan's
/// interned ids onto the runtime's and evaluates the extent table, so the
/// dispatch loop below touches only integers.
class PlanExecutor {
 public:
  PlanExecutor(const ExecutionPlan& plan,
               const std::map<std::string, std::int64_t>& params,
               const ExecScalars& scalars, sunway::CpeServices& services)
      : plan_(plan),
        scalars_(scalars),
        services_(services),
        functional_(services.functional()),
        guardAlwaysTrue_(services.guardAlwaysTrue()),
        frame_(static_cast<std::size_t>(plan.frameSlots), 0) {
    for (const auto& [name, slot] : plan.paramSlots) {
      auto it = params.find(name);
      if (it == params.end())
        throw InternalError(strCat("plan for '", plan.name, "': parameter '",
                                   name, "' is unbound"));
      frame_[static_cast<std::size_t>(slot)] = it->second;
    }
    frame_[static_cast<std::size_t>(plan.ridSlot)] = services.rid();
    frame_[static_cast<std::size_t>(plan.cidSlot)] = services.cid();

    extentValues_.reserve(plan.extents.size());
    for (const sched::Extent& extent : plan.extents)
      extentValues_.push_back(extent.evaluate(params));

    slotIds_.reserve(plan.slotNames.size());
    for (const std::string& name : plan.slotNames)
      slotIds_.push_back(services.internSlot(name));
    arrayIds_.reserve(plan.arrayNames.size());
    for (const std::string& name : plan.arrayNames)
      arrayIds_.push_back(services.internArray(name));

    dmaRequests_.reserve(plan.dmas.size());
    for (const PlanDma& d : plan.dmas) {
      sunway::DmaRequest request = d.base;
      request.slotId = slotIds_[static_cast<std::size_t>(d.slot)];
      request.arrayId = arrayIds_[static_cast<std::size_t>(d.array)];
      if (request.arrayId < 0)
        throw InputError(strCat(
            "DMA statement '",
            plan.stmtNames[static_cast<std::size_t>(d.stmt)], "' on array '",
            request.array, "': unknown array (not registered in host memory)"));
      dmaRequests_.push_back(std::move(request));
    }
    rmaRequests_.reserve(plan.rmas.size());
    for (const PlanRma& r : plan.rmas) {
      sunway::RmaRequest request = r.base;
      request.slotId = slotIds_[static_cast<std::size_t>(r.slot)];
      rmaRequests_.push_back(std::move(request));
    }
    lastDmaBySlot_.assign(plan.slotNames.size(), -1);
  }

  void run() {
    const PlanInstr* code = plan_.code.data();
    const int n = static_cast<int>(plan_.code.size());
    int pc = 0;
    while (pc < n) {
      const PlanInstr in = code[pc];
      switch (in.op) {
        case PlanOpcode::kLoop: {
          const PlanLoop& l = plan_.loops[static_cast<std::size_t>(in.a)];
          const std::int64_t begin =
              extentValues_[static_cast<std::size_t>(l.beginExtent)];
          frame_[static_cast<std::size_t>(l.varSlot)] = begin;
          const std::int64_t limit =
              extentValues_[static_cast<std::size_t>(l.endExtent)];
          frame_[static_cast<std::size_t>(l.limitSlot)] = limit;
          pc = begin < limit ? l.bodyPc : l.endPc;
          break;
        }
        case PlanOpcode::kLoopEnd: {
          const PlanLoop& l = plan_.loops[static_cast<std::size_t>(in.a)];
          const std::int64_t next =
              ++frame_[static_cast<std::size_t>(l.varSlot)];
          pc = next < frame_[static_cast<std::size_t>(l.limitSlot)]
                   ? l.bodyPc
                   : pc + 1;
          break;
        }
        case PlanOpcode::kAssign: {
          const PlanAssign& a =
              plan_.assigns[static_cast<std::size_t>(in.a)];
          frame_[static_cast<std::size_t>(a.varSlot)] =
              extentValues_[static_cast<std::size_t>(a.extent)];
          ++pc;
          break;
        }
        case PlanOpcode::kDma:
          execDma(in.a);
          ++pc;
          break;
        case PlanOpcode::kRma:
          execRma(in.a);
          ++pc;
          break;
        case PlanOpcode::kWaitDma:
          execWaitDma(in.a);
          ++pc;
          break;
        case PlanOpcode::kWaitRma: {
          const PlanWait& w = plan_.waits[static_cast<std::size_t>(in.a)];
          services_.waitSlotId(slotIds_[static_cast<std::size_t>(w.slot)],
                               /*isRma=*/true, w.isRowBroadcast);
          ++pc;
          break;
        }
        case PlanOpcode::kSync:
          services_.sync();
          ++pc;
          break;
        case PlanOpcode::kCompute:
          execCompute(in.a);
          ++pc;
          break;
        case PlanOpcode::kElementwise:
          execElementwise(in.a);
          ++pc;
          break;
      }
    }
  }

 private:
  /// Same retry budget and backoff as the tree-walking interpreter.
  static constexpr int kMaxDmaRetries = 3;
  static constexpr double kRetryBackoffSeconds = 1e-6;

  std::int64_t evalExpr(int id) const {
    const PlanExpr& e = plan_.exprs[static_cast<std::size_t>(id)];
    std::int64_t value = e.constant;
    for (int t = e.termsBegin; t < e.termsEnd; ++t) {
      const PlanTerm& term = plan_.terms[static_cast<std::size_t>(t)];
      value += term.coeff * frame_[static_cast<std::size_t>(term.slot)];
    }
    for (int d = e.divsBegin; d < e.divsEnd; ++d) {
      const PlanDivTerm& div = plan_.divTerms[static_cast<std::size_t>(d)];
      value += div.coeff * floorDiv(evalExpr(div.expr), div.denom);
    }
    return value;
  }

  std::int64_t resolveBuffer(const PlanBufferRef& ref) const {
    if (ref.phaseSlot < 0) return ref.base;
    const std::int64_t phase = floorMod(
        frame_[static_cast<std::size_t>(ref.phaseSlot)] + ref.phaseOffset,
        ref.phases);
    return ref.base + phase * ref.stride;
  }

  void execDma(int index) {
    const PlanDma& d = plan_.dmas[static_cast<std::size_t>(index)];
    sunway::DmaRequest& request =
        dmaRequests_[static_cast<std::size_t>(index)];
    request.batchIndex = d.batchExpr >= 0 ? evalExpr(d.batchExpr) : 0;
    request.rowStart = evalExpr(d.rowExpr);
    request.colStart = evalExpr(d.colExpr);
    if (d.clamp) {
      // Edge tiles: transfer min(tile, bound - offset) per dimension (the
      // template is mutable, so restore from the full-tile base first).  A
      // tile entirely past the bound becomes an empty transfer that still
      // signals its reply slot.
      request.tileRows =
          std::min(d.base.tileRows,
                   frame_[static_cast<std::size_t>(d.rowBoundSlot)] -
                       request.rowStart);
      request.tileCols =
          std::min(d.base.tileCols,
                   frame_[static_cast<std::size_t>(d.colBoundSlot)] -
                       request.colStart);
      if (request.tileRows <= 0 || request.tileCols <= 0) {
        request.tileRows = 0;
        request.tileCols = 0;
        request.rowStart = 0;
        request.colStart = 0;
      }
    }
    request.spmOffsetBytes = resolveBuffer(d.buffer);
    if ((request.rowStart | request.colStart | request.batchIndex) < 0)
      throwNegativeDma(d, request);
    lastDmaBySlot_[static_cast<std::size_t>(d.slot)] = index;
    services_.dmaIssue(request);
  }

  [[noreturn]] void throwNegativeDma(const PlanDma& d,
                                     const sunway::DmaRequest& request) const {
    const std::string prefix = strCat(
        "DMA statement '", plan_.stmtNames[static_cast<std::size_t>(d.stmt)],
        "' on array '", request.array, "': ");
    if (request.rowStart < 0 || request.colStart < 0)
      throw InputError(strCat(prefix, "negative tile origin (",
                              request.rowStart, ", ", request.colStart, ")"));
    throw InputError(
        strCat(prefix, "negative batch index ", request.batchIndex));
  }

  void execRma(int index) {
    const PlanRma& r = plan_.rmas[static_cast<std::size_t>(index)];
    if (!guardAlwaysTrue_ &&
        frame_[static_cast<std::size_t>(r.guardSlot)] != evalExpr(r.guardExpr))
      return;  // receivers only wait on replyr
    sunway::RmaRequest& request =
        rmaRequests_[static_cast<std::size_t>(index)];
    request.srcSpmOffsetBytes = resolveBuffer(r.src);
    request.dstSpmOffsetBytes = resolveBuffer(r.dst);
    services_.rmaIssue(request);
  }

  void execWaitDma(int index) {
    const PlanWait& w = plan_.waits[static_cast<std::size_t>(index)];
    const int runtimeSlot = slotIds_[static_cast<std::size_t>(w.slot)];
    // DMA replies can fail transiently under fault injection; re-issue the
    // recorded template with exponential backoff, exactly like the
    // tree-walking interpreter.
    for (int attempt = 0;; ++attempt) {
      try {
        services_.waitSlotId(runtimeSlot, /*isRma=*/false, w.isRowBroadcast);
        return;
      } catch (const TransientError& error) {
        const int last = lastDmaBySlot_[static_cast<std::size_t>(w.slot)];
        if (last < 0) throw;  // nothing to re-issue
        if (attempt >= kMaxDmaRetries)
          throw ProtocolError(
              strCat("DMA on slot '",
                     plan_.slotNames[static_cast<std::size_t>(w.slot)],
                     "' still failing after ", attempt,
                     " retries: ", error.what()));
        services_.noteDmaRetry();
        services_.stallFor(kRetryBackoffSeconds *
                           static_cast<double>(1 << attempt));
        services_.dmaIssue(dmaRequests_[static_cast<std::size_t>(last)]);
      }
    }
  }

  void execCompute(int index) {
    const PlanCompute& c = plan_.computes[static_cast<std::size_t>(index)];
    // Edge tiles: clamp each dimension to the valid extent; a fully
    // out-of-range tile skips the kernel (and charges zero flops).
    std::int64_t m = c.m, n = c.n, k = c.k;
    double flops = c.flops;
    if (c.mBoundSlot >= 0)
      m = std::min(m, frame_[static_cast<std::size_t>(c.mBoundSlot)] -
                          evalExpr(c.mOriginExpr));
    if (c.nBoundSlot >= 0)
      n = std::min(n, frame_[static_cast<std::size_t>(c.nBoundSlot)] -
                          evalExpr(c.nOriginExpr));
    if (c.kBoundSlot >= 0)
      k = std::min(k, frame_[static_cast<std::size_t>(c.kBoundSlot)] -
                          evalExpr(c.kOriginExpr));
    const bool partial = m != c.m || n != c.n || k != c.k;
    if (partial) {
      if (m <= 0 || n <= 0 || k <= 0) return;
      flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
              static_cast<double>(k);
    }
    if (c.isAsm)
      services_.computeTimeMicro(flops, c.mr, c.nr);
    else
      services_.computeTime(flops, sunway::ComputeRate::kNaive);
    if (!functional_) return;
    double* cp = services_.spmPtr(resolveBuffer(c.c));
    double* ap = services_.spmPtr(resolveBuffer(c.a));
    double* bp = services_.spmPtr(resolveBuffer(c.b));
    if (partial) {
      // Partial tile at full-tile SPM strides: strided edge kernel, same
      // per-element accumulation order as the full-shape kernels.
      kernel::dgemmEdgeKernel(cp, ap, bp, m, n, k, /*lda=*/c.k,
                              /*ldb=*/c.n, /*ldc=*/c.n);
      return;
    }
    if (c.isAsm)
      kernel::dgemmMicroKernelVariant(cp, ap, bp, c.m, c.n, c.k, c.mr, c.nr);
    else
      kernel::dgemmNaiveKernel(cp, ap, bp, c.m, c.n, c.k);
  }

  void execElementwise(int index) {
    const PlanElementwise& e =
        plan_.elementwises[static_cast<std::size_t>(index)];
    const std::int64_t count = e.rows * e.cols;
    services_.computeTime(static_cast<double>(count),
                          sunway::ComputeRate::kElementwise);
    if (!functional_) return;
    double* tile = services_.spmPtr(resolveBuffer(e.target));
    switch (e.op) {
      case ElementwiseMarkInfo::Op::kBetaScaleC:
        kernel::tileScale(tile, count, scalars_.beta);
        break;
      case ElementwiseMarkInfo::Op::kAlphaScaleA:
        kernel::tileScale(tile, count, scalars_.alpha);
        break;
      case ElementwiseMarkInfo::Op::kQuantize:
        kernel::tileQuantize(tile, count);
        break;
      case ElementwiseMarkInfo::Op::kRelu:
        kernel::tileRelu(tile, count);
        break;
      case ElementwiseMarkInfo::Op::kTranspose: {
        const double* src = services_.spmPtr(resolveBuffer(e.source));
        kernel::tileTranspose(tile, src, e.rows, e.cols);
        break;
      }
    }
  }

  const ExecutionPlan& plan_;
  const ExecScalars scalars_;
  sunway::CpeServices& services_;
  const bool functional_;
  const bool guardAlwaysTrue_;
  std::vector<std::int64_t> frame_;
  std::vector<std::int64_t> extentValues_;
  /// Plan-local id -> runtime id, bound once per run.
  std::vector<int> slotIds_;
  std::vector<int> arrayIds_;
  /// Per-CPE mutable request copies the hot path writes integers into.
  std::vector<sunway::DmaRequest> dmaRequests_;
  std::vector<sunway::RmaRequest> rmaRequests_;
  /// Template index of the last DMA issued per plan slot id, for retry.
  std::vector<int> lastDmaBySlot_;
};

}  // namespace

std::shared_ptr<const ExecutionPlan> lowerToPlan(
    const codegen::KernelProgram& program) {
  return Lowerer(program).lower();
}

void runCpePlan(const ExecutionPlan& plan,
                const std::map<std::string, std::int64_t>& params,
                const ExecScalars& scalars, sunway::CpeServices& services) {
  PlanExecutor(plan, params, scalars, services).run();
}

}  // namespace sw::rt
