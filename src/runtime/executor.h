// High-level execution entry points: run a generated kernel on the
// threaded mesh simulator (functional + timing), or estimate its timing
// with the sequential symmetric model.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "codegen/program.h"
#include "runtime/interpreter.h"
#include "sunway/arch.h"
#include "sunway/mesh.h"
#include "support/metrics.h"
#include "support/perf_report.h"

namespace sw::rt {

struct ExecutionPlan;

/// Which per-CPE engine executes the program: the lowered register-machine
/// plan (default whenever a plan is supplied), the legacy tree-walking
/// interpreter (the reference semantics), or the native JIT engine
/// (src/jit): the program compiled to a host shared object and executed as
/// real machine code, bit-identical results and discrete counters but no
/// simulated timing.
enum class ExecEngine {
  kPlan,
  kTreeWalk,
  kNative,
};

struct RunOutcome {
  double seconds = 0.0;
  double gflops = 0.0;
  /// Engine that produced this outcome: "plan", "tree" or "native".  For
  /// "native", `seconds`/`gflops` are measured wall-clock quantities and
  /// the timing counters are zero; everything else is simulated time.
  std::string engine = "plan";
  /// Native engine only: the JIT shared object was reused from the
  /// persistent cache (no compiler invocation).
  bool jitCacheHit = false;
  sunway::CpeCounters counters;
  /// Derived gauges (overlap %, stall %, SPM high-water vs. budget,
  /// per-buffer bytes); filled by runOnMesh / estimateTiming.
  metrics::DerivedRunMetrics metrics;
  /// The run's explanation layer: time attribution, roofline position and
  /// top bottleneck (see support/perf_report.h); filled by runOnMesh /
  /// estimateTiming for both engines.
  perf::PerfReport report;
  /// Bytes runGemmFunctional copied between the caller's arrays and padded
  /// shadow arrays (pack + unpack).  Zero on the edge-tile path, which
  /// binds the caller's buffers directly.
  std::int64_t hostCopyBytes = 0;
};

/// Roofline ceilings for PerfReport, derived from the architecture model:
/// peak GFLOPS at the asm micro-kernel rate, aggregate DDR bandwidth, and
/// per-broadcast RMA bandwidth.
[[nodiscard]] perf::MachineModel machineModelFromArch(
    const sunway::ArchConfig& config);

/// Multi-group roofline: compute peak scales with the streaming group
/// count while the DMA peak is the contention-derated node aggregate
/// (groups × ArchConfig::groupDdrBandwidth(groups)), so six groups never
/// advertise 6× single-group bandwidth the shared DDR pool cannot supply.
[[nodiscard]] perf::MachineModel machineModelFromArch(
    const sunway::ArchConfig& config, int concurrentGroups);

/// Build one run's PerfReport from its aggregate counters; shared by the
/// mesh, estimator and native (src/jit) engines.
[[nodiscard]] perf::PerfReport buildRunReport(
    const codegen::KernelProgram& program, const std::string& engine,
    const std::map<std::string, std::int64_t>& params, double wallSeconds,
    int cpeCount, double reportedFlops, const sunway::CpeCounters& totals,
    const sunway::ArchConfig& config);

/// Compute the derived gauges from one run's aggregate counters.
/// `cpeCount` is the number of CPEs the counters were summed over (64 for
/// a mesh run, 1 for the symmetric estimator).
metrics::DerivedRunMetrics deriveRunMetrics(
    const sunway::CpeCounters& totals, double wallSeconds, int cpeCount,
    const codegen::KernelProgram& program, std::int64_t spmBudgetBytes);

/// Bind program parameter names to concrete (padded) sizes.
std::map<std::string, std::int64_t> bindParams(
    const codegen::KernelProgram& program, std::int64_t m, std::int64_t n,
    std::int64_t k, std::int64_t batch = 1);

/// GEMM flop count used for GFLOPS reporting (the convention of §8:
/// 2*M*N*K multiply-adds per batch element).
double gemmFlops(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::int64_t batch = 1);

/// Execute on the (threaded) mesh simulator.  `mesh.memory()` must already
/// hold the arrays the program accesses when the mesh is functional.  When
/// `plan` is non-null each CPE runs the lowered plan; otherwise the
/// tree-walking interpreter (identical results either way).
RunOutcome runOnMesh(sunway::MeshSimulator& mesh,
                     const codegen::KernelProgram& program,
                     const std::map<std::string, std::int64_t>& params,
                     const ExecScalars& scalars, double reportedFlops,
                     const ExecutionPlan* plan = nullptr);

/// Estimate timing with the sequential symmetric single-CPE model; scales
/// to paper-sized shapes.  `plan` selects the engine as in runOnMesh.
RunOutcome estimateTiming(const sunway::ArchConfig& config,
                          const codegen::KernelProgram& program,
                          const std::map<std::string, std::int64_t>& params,
                          double reportedFlops,
                          const ExecutionPlan* plan = nullptr);

}  // namespace sw::rt
