// Lowered execution plans: the hot-path engine behind functional runs and
// timing estimates.
//
// The schedule structure of a generated kernel is entirely static — loop
// nests, buffer phases, reply slots and request shapes never depend on the
// data.  `lowerToPlan` therefore runs once per compiled kernel and turns
// the KernelProgram AST into a flat instruction stream over a dense integer
// frame:
//   * every variable binding site (param, Rid/Cid, loop var, assign var)
//     becomes its own frame slot, resolved at lowering time — shadowing is
//     structurally impossible (there is nothing left to erase);
//   * affine expressions become (coeff, slot) term vectors plus floordiv
//     terms over a shared expression pool;
//   * buffer references become a precomputed (base, stride, phase) triple,
//     so resolving a double-buffered SPM address is one mod and one
//     multiply;
//   * DMA/RMA requests are pre-validated and pre-filled templates — the
//     per-iteration work is evaluating 2–3 affine expressions and writing
//     the integers into the template;
//   * reply slots and array names are interned: the executor binds them to
//     the runtime's dense ids once per run (CpeServices::internSlot /
//     internArray) and the steady state never touches a string.
//
// `runCpePlan` executes the plan against a CpeServices backend with
// semantics bit-identical to the tree-walking interpreter (see
// tests/plan_equivalence_test.cc), including the DMA retry protocol under
// fault injection.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codegen/program.h"
#include "runtime/interpreter.h"
#include "schedule/extent.h"
#include "sunway/services.h"

namespace sw::rt {

/// One linear term of a lowered affine expression: coeff * frame[slot].
struct PlanTerm {
  int slot = 0;
  std::int64_t coeff = 0;
};

/// One floordiv term: coeff * floor(eval(expr) / denom).
struct PlanDivTerm {
  std::int64_t coeff = 0;
  int expr = 0;  // index into ExecutionPlan::exprs
  std::int64_t denom = 1;
};

/// A lowered affine expression; terms/divs are contiguous ranges into the
/// plan's shared pools.
struct PlanExpr {
  std::int64_t constant = 0;
  int termsBegin = 0;
  int termsEnd = 0;
  int divsBegin = 0;
  int divsEnd = 0;
};

/// Pre-resolved SPM buffer reference.  phaseSlot < 0 means the phase is
/// static and already folded into `base`; otherwise the address is
/// base + floorMod(frame[phaseSlot] + phaseOffset, phases) * stride.
struct PlanBufferRef {
  std::int64_t base = 0;
  std::int64_t stride = 0;
  std::int64_t phaseOffset = 0;
  int phaseSlot = -1;
  int phases = 1;
};

/// for-loop descriptor; begin/end are per-run extent-table entries (loop
/// extents only ever depend on structure parameters).
struct PlanLoop {
  int varSlot = 0;
  int limitSlot = 0;  // frame slot caching the evaluated end
  int beginExtent = 0;
  int endExtent = 0;
  int bodyPc = 0;
  int endPc = 0;
};

/// Peeled single iteration: frame[varSlot] = extentValues[extent].
struct PlanAssign {
  int varSlot = 0;
  int extent = 0;
};

/// Pre-filled DMA request template.  Per iteration the executor evaluates
/// batch/row/col and the buffer phase, writes them into its mutable copy of
/// `base` and issues.
struct PlanDma {
  sunway::DmaRequest base;  // isPut/array/tile shape/slot filled at lowering
  int slot = 0;             // plan-local interned reply-slot id
  int array = 0;            // plan-local interned array id
  int batchExpr = -1;       // -1: no batch subscript (stays 0)
  int rowExpr = 0;
  int colExpr = 0;
  PlanBufferRef buffer;
  int stmt = 0;  // index into stmtNames, for error messages
  /// Edge-tile clamping: effective rows/cols = min(tile, frame[bound] -
  /// start), possibly empty; base.spmRowStrideElems carries the full-tile
  /// stride.  Bound slots are the rowsParam/colsParam parameter slots.
  bool clamp = false;
  int rowBoundSlot = -1;
  int colBoundSlot = -1;
};

/// Pre-filled RMA broadcast template plus its lowered sender guard.
struct PlanRma {
  sunway::RmaRequest base;  // kind/isSender/bytes/slot filled at lowering
  int slot = 0;
  int guardSlot = 0;  // frame slot of the guard's mesh variable (Rid/Cid)
  int guardExpr = 0;
  PlanBufferRef src;
  PlanBufferRef dst;
  int stmt = 0;
};

struct PlanWait {
  int slot = 0;  // plan-local interned reply-slot id
  bool isRowBroadcast = true;
};

struct PlanCompute {
  bool isAsm = true;
  /// Register-block variant of the generated micro-kernel (kAsm only).
  int mr = 4, nr = 8;
  std::int64_t m = 0, n = 0, k = 0;
  double flops = 0.0;
  PlanBufferRef a, b, c;
  /// Edge-tile clamps (boundSlot < 0 means the dimension is unclamped):
  /// effective extent = min(full, frame[boundSlot] - eval(originExpr)).
  /// Any non-positive effective extent skips the kernel call entirely.
  int mOriginExpr = -1, nOriginExpr = -1, kOriginExpr = -1;
  int mBoundSlot = -1, nBoundSlot = -1, kBoundSlot = -1;
};

struct PlanElementwise {
  sched::ElementwiseMarkInfo::Op op = sched::ElementwiseMarkInfo::Op::kBetaScaleC;
  std::int64_t rows = 0, cols = 0;
  PlanBufferRef target;
  PlanBufferRef source;  // kTranspose only
};

enum class PlanOpcode : std::uint8_t {
  kLoop,     // a: index into loops; jumps to endPc when the range is empty
  kLoopEnd,  // a: index into loops; ++var, branch back while var < limit
  kAssign,   // a: index into assigns
  kDma,      // a: index into dmas
  kRma,      // a: index into rmas
  kWaitDma,  // a: index into waits (with retry protocol)
  kWaitRma,  // a: index into waits
  kSync,
  kCompute,      // a: index into computes
  kElementwise,  // a: index into elementwises
};

struct PlanInstr {
  PlanOpcode op = PlanOpcode::kSync;
  int a = 0;
};

/// The flat, immutable product of lowerToPlan.  Shared read-only across all
/// 64 CPE executors of a run (each executor keeps its own frame and request
/// copies).
struct ExecutionPlan {
  std::string name;  // program name, for diagnostics

  std::vector<PlanInstr> code;
  std::vector<PlanLoop> loops;
  std::vector<PlanAssign> assigns;
  std::vector<PlanDma> dmas;
  std::vector<PlanRma> rmas;
  std::vector<PlanWait> waits;
  std::vector<PlanCompute> computes;
  std::vector<PlanElementwise> elementwises;

  // Shared expression pools.
  std::vector<PlanExpr> exprs;
  std::vector<PlanTerm> terms;
  std::vector<PlanDivTerm> divTerms;

  /// Loop/assign extents, deduplicated; evaluated once per run into a value
  /// table (they depend only on structure parameters).
  std::vector<sched::Extent> extents;

  /// Frame layout: total slot count, the parameter bindings and the mesh
  /// coordinate slots.  Slots not listed here are loop/assign variables and
  /// loop limits, written by the instruction stream before any read.
  int frameSlots = 0;
  std::vector<std::pair<std::string, int>> paramSlots;
  int ridSlot = -1;
  int cidSlot = -1;

  /// Interned name tables, bound to runtime ids once per run.
  std::vector<std::string> slotNames;
  std::vector<std::string> arrayNames;
  /// Statement names for error messages (validateDma parity).
  std::vector<std::string> stmtNames;
};

/// Lower `program` to an execution plan.  Performs all static validation of
/// the tree-walking interpreter up front (tile shapes, reply slots, buffer
/// and phase-variable resolution, sender guards), throwing InputError with
/// the same statement-naming messages.
[[nodiscard]] std::shared_ptr<const ExecutionPlan> lowerToPlan(
    const codegen::KernelProgram& program);

/// Execute `plan` for the CPE behind `services`; drop-in replacement for
/// runCpeProgram with bit-identical results, counters and simulated time.
void runCpePlan(const ExecutionPlan& plan,
                const std::map<std::string, std::int64_t>& params,
                const ExecScalars& scalars, sunway::CpeServices& services);

}  // namespace sw::rt
