// Per-CPE interpreter for KernelPrograms.
//
// Executes the op list produced by the program builder against a
// CpeServices backend.  In functional mode the interpreter also performs
// the math (micro-kernel / naive kernel / element-wise tile ops) on real
// SPM data; in timing mode only the services' logical clock advances.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "codegen/program.h"
#include "sunway/services.h"

namespace sw::rt {

/// Runtime scalars of the DGEMM contract C = alpha*A*B + beta*C.
struct ExecScalars {
  double alpha = 1.0;
  double beta = 1.0;
};

/// Execute `program` for the CPE behind `services`.  `params` binds the
/// structure parameters (M, N, K[, B]) to padded concrete sizes.
void runCpeProgram(const codegen::KernelProgram& program,
                   const std::map<std::string, std::int64_t>& params,
                   const ExecScalars& scalars, sunway::CpeServices& services);

}  // namespace sw::rt
