// Simulated xMath — the vendor BLAS library the paper compares against
// (§8.2–§8.4).  xMath is closed source; the paper itself reasons about it
// from measurements.  This model implements exactly the externally
// observable behaviours the paper reports:
//
//  * strong efficiency for power-of-two K (≥93% of peak at K = 16384,
//    §8.2: "the Gflops numbers of xMath indeed exceed 93.00% of the peak
//    performance ... when the size of the k dimension is 16384");
//  * severe degradation for large non-power-of-two K (down to ~42% at
//    K = 15360, observed nine times in Fig.14);
//  * strong results on small square shapes (where the generated code's
//    DMA latency hiding has too few overlaps, §8.1);
//  * one CPE-mesh startup per call, so batched GEMM pays a launch +
//    coarse synchronisation cost per batch element (§8.3);
//  * no fusion: prologue/epilogue element-wise passes execute on the MPE
//    over main memory (§8.4).
//
// The functional path is exact DGEMM (it delegates to the reference
// kernel), so correctness comparisons in tests are meaningful.
#pragma once

#include <cstdint>

#include "sunway/arch.h"

namespace sw::xmath {

/// Functional xMath dgemm: C = alpha*A*B + beta*C (row-major).
void dgemm(double* c, const double* a, const double* b, std::int64_t m,
           std::int64_t n, std::int64_t k, double alpha, double beta);

/// Functional batched dgemm over contiguous batch-major operands.
void dgemmBatched(double* c, const double* a, const double* b,
                  std::int64_t batch, std::int64_t m, std::int64_t n,
                  std::int64_t k, double alpha, double beta);

/// Timing model.
class XMathModel {
 public:
  explicit XMathModel(const sunway::ArchConfig& arch) : arch_(arch) {}

  /// Shape-dependent fraction of peak xMath sustains (deterministic,
  /// including the +-2% measurement-style jitter).
  [[nodiscard]] double efficiency(std::int64_t m, std::int64_t n,
                                  std::int64_t k) const;

  /// One dgemm call (includes one mesh launch).
  [[nodiscard]] double gemmSeconds(std::int64_t m, std::int64_t n,
                                   std::int64_t k) const;

  /// Batched gemm: the batch dimension cannot be embedded (§8.3), so the
  /// library launches the CPE mesh once per element.
  [[nodiscard]] double batchedGemmSeconds(std::int64_t batch, std::int64_t m,
                                          std::int64_t n,
                                          std::int64_t k) const;

  /// An element-wise pass over `elements` doubles executed on the MPE
  /// (read + write through main memory); used by the unfused
  /// prologue/epilogue baselines of §8.4.
  [[nodiscard]] double mpeElementwiseSeconds(std::int64_t elements) const;

  /// Per-call launch overhead (athread spawn + library setup + the
  /// coarse-grained synchronisations of §8.3).
  [[nodiscard]] double launchOverheadSeconds() const { return 120e-6; }

  [[nodiscard]] double gflops(std::int64_t m, std::int64_t n,
                              std::int64_t k) const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k) / gemmSeconds(m, n, k) / 1e9;
  }

 private:
  const sunway::ArchConfig& arch_;
};

}  // namespace sw::xmath
