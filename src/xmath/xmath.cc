#include "xmath/xmath.h"

#include <algorithm>
#include <cmath>

#include "kernel/reference.h"
#include "support/math_util.h"

namespace sw::xmath {

void dgemm(double* c, const double* a, const double* b, std::int64_t m,
           std::int64_t n, std::int64_t k, double alpha, double beta) {
  kernel::referenceGemm(c, a, b, m, n, k, alpha, beta);
}

void dgemmBatched(double* c, const double* a, const double* b,
                  std::int64_t batch, std::int64_t m, std::int64_t n,
                  std::int64_t k, double alpha, double beta) {
  kernel::referenceBatchedGemm(c, a, b, batch, m, n, k, alpha, beta);
}

namespace {

/// Deterministic per-shape jitter in [-1, 1], standing in for the run-to-run
/// variation of a measured library.
double shapeJitter(std::int64_t m, std::int64_t n, std::int64_t k) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t v : {static_cast<std::uint64_t>(m),
                          static_cast<std::uint64_t>(n),
                          static_cast<std::uint64_t>(k)}) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
  }
  return (static_cast<double>(h >> 11) /
              static_cast<double>(1ull << 53)) *
             2.0 -
         1.0;
}

}  // namespace

double XMathModel::efficiency(std::int64_t m, std::int64_t n,
                              std::int64_t k) const {
  double eff;
  if (isPowerOfTwo(k)) {
    // Mature code path: efficiency grows with the reduction depth, peaking
    // above 93% at K = 16384 (§8.2).
    const double depth = std::min(1.0, static_cast<double>(k) / 16384.0);
    eff = 0.885 + 0.050 * depth;
  } else if (k >= 5120) {
    // The immature path the paper observes: large non-power-of-two K
    // collapses, bottoming out at 42.25% for 8192x8192x15360; smaller
    // parallel extents degrade less (the nine Fig.14 degradations vary).
    const double excess =
        std::min(1.0, static_cast<double>(k - 5120) / (15360.0 - 5120.0));
    const double sizeFactor =
        std::min(1.0, static_cast<double>(m) * static_cast<double>(n) /
                          (8192.0 * 8192.0));
    eff = 0.64 - 0.22 * excess * sizeFactor;
  } else {
    // Small non-power-of-two K: only a mild penalty.
    eff = 0.855;
  }
  // Mild penalty when the parallel dimensions are not powers of two.
  if (!isPowerOfTwo(m)) eff -= 0.008;
  if (!isPowerOfTwo(n)) eff -= 0.008;
  eff += 0.02 * shapeJitter(m, n, k) * eff;
  return std::clamp(eff, 0.05, 0.99);
}

double XMathModel::gemmSeconds(std::int64_t m, std::int64_t n,
                               std::int64_t k) const {
  const double flops = 2.0 * static_cast<double>(m) *
                       static_cast<double>(n) * static_cast<double>(k);
  return launchOverheadSeconds() +
         flops / (arch_.peakFlops() * efficiency(m, n, k));
}

double XMathModel::batchedGemmSeconds(std::int64_t batch, std::int64_t m,
                                      std::int64_t n, std::int64_t k) const {
  return static_cast<double>(batch) * gemmSeconds(m, n, k);
}

double XMathModel::mpeElementwiseSeconds(std::int64_t elements) const {
  // One read and one write per element through the MPE's memory path, plus
  // the scalar op itself.
  const double bytes = 2.0 * static_cast<double>(elements) * sizeof(double);
  const double memory = bytes / arch_.mpeMemBandwidthBytesPerSec;
  const double compute = static_cast<double>(elements) /
                         (arch_.mpeFrequencyHz * arch_.mpeFlopsPerCycle);
  return std::max(memory, compute);
}

}  // namespace sw::xmath
