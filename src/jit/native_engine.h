// Native JIT execution engine (--engine native): compiles a KernelProgram's
// host translation unit (codegen::printNativeHostSource) into a shared
// object with the system C compiler, caches it on disk keyed by a content
// digest, dlopens it and dispatches functional runs through the resolved
// sw_native_run symbol.
//
// The engine is an accelerator, not a second semantics: the emitted TU
// mirrors the simulator runtimes op for op, so C results and the discrete
// counters are bit-identical to the tree-walk and plan engines (pinned by
// tests/plan_equivalence_test.cc).  Anything environmental — compiler
// missing, cache directory unwritable, corrupt artifact, dlopen failure —
// throws TransientError so callers degrade to the plan engine instead of
// failing the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/program.h"
#include "sunway/services.h"

namespace sw::jit {

/// Knobs for locating the toolchain and the on-disk artifact cache.
struct NativeEngineConfig {
  /// Root of the .so cache.  Artifacts live under
  /// `<cacheDir>/v<abi-version>/<digest>.so`, written atomically
  /// (tmp + rename) so concurrent processes never observe torn objects.
  /// Empty resolves $SWCODEGEN_JIT_CACHE_DIR, then a per-user directory
  /// under the system temp dir.
  std::string cacheDir;
  /// C compiler driver.  Empty resolves $SWCODEGEN_CC, then $CC, then "cc".
  std::string compiler;
};

/// Inputs of one native run, in program declaration order.
struct NativeRunInput {
  std::vector<long long> params;  // one per KernelProgram::params entry
  std::vector<double*> arrays;    // one per KernelProgram::arrays entry
  double alpha = 1.0;
  double beta = 1.0;
};

struct NativeRunResult {
  /// Discrete counters only (messages/bytes/syncs/kernel calls/flops);
  /// the timing fields stay zero — simulated seconds are a model quantity
  /// the native engine does not produce.
  sunway::CpeCounters counters;
  /// Whether the shared object was reused from the persistent cache (no
  /// compiler invocation this run).
  bool cacheHit = false;
  std::string soPath;
};

/// Compile (or fetch from cache) and execute the native engine for
/// `program`.  Throws TransientError on any environmental failure; throws
/// InputError only for malformed inputs (wrong params/arrays arity).
NativeRunResult runNative(const codegen::KernelProgram& program,
                          const NativeEngineConfig& config,
                          const NativeRunInput& input);

/// Content digest of the shared object runNative would use (hex, stable
/// across processes): fnv1a64 over the emitted host source and the ABI
/// version.
[[nodiscard]] std::string nativeObjectDigest(
    const codegen::KernelProgram& program);

/// Resolved cache directory (the version-stamped subdirectory included).
[[nodiscard]] std::string resolveNativeCacheDir(
    const NativeEngineConfig& config);

/// Full path of the cached artifact for `digest` under `config`'s cache.
[[nodiscard]] std::string nativeObjectPath(const NativeEngineConfig& config,
                                           const std::string& digest);

/// Resolved compiler driver (config override, then $SWCODEGEN_CC, $CC,
/// "cc").
[[nodiscard]] std::string resolveNativeCompiler(
    const NativeEngineConfig& config);

/// Bytes of cached .so artifacts currently on disk for `program` under
/// `config`'s cache (0 when absent); used by the kernel service's cache
/// budget accounting.
[[nodiscard]] std::int64_t nativeObjectBytes(
    const codegen::KernelProgram& program, const NativeEngineConfig& config);

/// Drop the in-process dlopen handle table (handles themselves are never
/// dlclosed — compiled code may still be executing).  Tests use this to
/// force a fresh disk-cache probe.
void resetNativeEngineForTest();

}  // namespace sw::jit
