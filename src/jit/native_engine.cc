#include "jit/native_engine.h"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "codegen/athread_printer.h"
#include "support/digest.h"
#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/trace.h"

namespace sw::jit {

namespace fs = std::filesystem;

namespace {

/// C-layout mirror of the sw_counters struct every generated host TU
/// defines; printNativeHostSource and this struct must change together
/// (guarded by kNativeHostAbiVersion).
struct RawCounters {
  long long dmaMessages;
  long long dmaBytes;
  long long rmaBroadcastsSent;
  long long rmaBytesSent;
  long long syncs;
  long long microKernelCalls;
  double flops;
};

using NativeRunFn = int (*)(const long long* params, double* const* arrays,
                            double alpha, double beta, RawCounters* totals);
using NativeAbiFn = long (*)(void);

struct LoadedObject {
  NativeRunFn run = nullptr;
  std::string path;
};

/// In-process object table plus the single-flight lock: the first caller
/// for a digest compiles/loads while later callers block, then reuse the
/// handle.  Handles are never dlclosed — generated code may be mid-run on
/// another thread, and the objects are small.
std::mutex& engineMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, LoadedObject>& objectTable() {
  static std::map<std::string, LoadedObject> table;
  return table;
}

std::string envOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? value : fallback;
}

[[noreturn]] void unavailable(const std::string& why) {
  throw TransientError(strCat("native engine unavailable: ", why));
}

std::string readTail(const fs::path& path, std::size_t maxBytes = 800) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  if (text.size() > maxBytes) text = "..." + text.substr(text.size() - maxBytes);
  for (char& c : text)
    if (c == '\n') c = ' ';
  return text;
}

/// Compile `source` into `finalPath` atomically: unique tmp names, rename
/// over the destination, best-effort cleanup.  Throws TransientError with
/// the compiler's stderr tail on failure.
void compileObject(const std::string& compiler, const std::string& source,
                   const fs::path& finalPath) {
  trace::Span span("jit.compile", {trace::arg("so", finalPath.string())});
  std::error_code ec;
  fs::create_directories(finalPath.parent_path(), ec);
  const std::string unique =
      strCat(static_cast<long long>(::getpid()), ".",
             static_cast<const void*>(&source));
  const fs::path srcPath =
      finalPath.parent_path() / strCat(finalPath.stem().string(), ".", unique, ".c");
  const fs::path tmpSo = fs::path(strCat(finalPath.string(), ".", unique, ".tmp"));
  const fs::path errPath = fs::path(strCat(finalPath.string(), ".", unique, ".err"));
  {
    std::ofstream out(srcPath, std::ios::binary | std::ios::trunc);
    if (!out) unavailable(strCat("cannot write JIT source under '",
                                 finalPath.parent_path().string(),
                                 "' (directory not writable?)"));
    out << source;
    out.flush();
    if (!out) unavailable(strCat("short write of JIT source '",
                                 srcPath.string(), "'"));
  }
  const std::string command =
      strCat("'", compiler, "' -O2 -fPIC -shared -pthread -x c '",
             srcPath.string(), "' -o '", tmpSo.string(), "' -lm > '",
             errPath.string(), "' 2>&1");
  const int rc = std::system(command.c_str());
  const std::string errTail = readTail(errPath);
  fs::remove(srcPath, ec);
  fs::remove(errPath, ec);
  if (rc != 0 || !fs::exists(tmpSo)) {
    fs::remove(tmpSo, ec);
    unavailable(strCat("compiler '", compiler, "' failed (exit status ", rc,
                       "): ", errTail.empty() ? "no diagnostics" : errTail));
  }
  fs::rename(tmpSo, finalPath, ec);
  if (ec) {
    fs::remove(tmpSo, ec);
    unavailable(strCat("cannot publish JIT object '", finalPath.string(),
                       "': ", ec.message()));
  }
}

/// dlopen `path` and resolve the entry points, verifying the embedded ABI
/// version.  Returns nullopt-style failure via the `why` out-param so the
/// caller can decide between recompiling and giving up.
bool tryLoad(const fs::path& path, LoadedObject& out, std::string& why) {
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    why = strCat("dlopen failed: ", err != nullptr ? err : "unknown error");
    return false;
  }
  auto abi = reinterpret_cast<NativeAbiFn>(::dlsym(handle, "sw_native_abi"));
  auto run = reinterpret_cast<NativeRunFn>(::dlsym(handle, "sw_native_run"));
  if (abi == nullptr || run == nullptr) {
    why = "missing sw_native_abi/sw_native_run symbols";
    return false;
  }
  if (abi() != codegen::kNativeHostAbiVersion) {
    why = strCat("ABI version ", abi(), " != expected ",
                 codegen::kNativeHostAbiVersion);
    return false;
  }
  out.run = run;
  out.path = path.string();
  return true;
}

/// Get-or-create the loaded object for `program`.  Caller holds no lock.
LoadedObject obtainObject(const codegen::KernelProgram& program,
                          const NativeEngineConfig& config, bool& cacheHit) {
  const std::string digest = nativeObjectDigest(program);
  std::lock_guard<std::mutex> lock(engineMutex());
  auto it = objectTable().find(digest);
  if (it != objectTable().end()) {
    cacheHit = true;
    return it->second;
  }
  const fs::path soPath(nativeObjectPath(config, digest));
  const std::string compiler = resolveNativeCompiler(config);
  const std::string source = codegen::printNativeHostSource(program);
  LoadedObject loaded;
  std::string why;
  cacheHit = fs::exists(soPath);
  if (cacheHit && tryLoad(soPath, loaded, why)) {
    objectTable().emplace(digest, loaded);
    SW_INFO("jit", "event=cache_hit digest=", digest, " so=", soPath.string());
    return loaded;
  }
  if (cacheHit) {
    // Corrupt, truncated or stale artifact: evict and recompile once.
    SW_WARN("jit", "event=evict_bad_object digest=", digest, " reason=\"",
            why, "\"");
    std::error_code ec;
    fs::remove(soPath, ec);
    cacheHit = false;
  }
  compileObject(compiler, source, soPath);
  if (!tryLoad(soPath, loaded, why))
    unavailable(strCat("freshly compiled object '", soPath.string(),
                       "' rejected: ", why));
  objectTable().emplace(digest, loaded);
  SW_INFO("jit", "event=compiled digest=", digest, " so=", soPath.string(),
          " compiler=", compiler);
  return loaded;
}

}  // namespace

std::string resolveNativeCompiler(const NativeEngineConfig& config) {
  if (!config.compiler.empty()) return config.compiler;
  return envOr("SWCODEGEN_CC", envOr("CC", "cc"));
}

std::string resolveNativeCacheDir(const NativeEngineConfig& config) {
  std::string root = config.cacheDir;
  if (root.empty()) root = envOr("SWCODEGEN_JIT_CACHE_DIR", "");
  if (root.empty()) {
    std::error_code ec;
    fs::path tmp = fs::temp_directory_path(ec);
    if (ec) tmp = "/tmp";
    root = (tmp / strCat("swcodegen-jit-", static_cast<long long>(::getuid())))
               .string();
  }
  return (fs::path(root) / strCat("v", codegen::kNativeHostAbiVersion))
      .string();
}

std::string nativeObjectDigest(const codegen::KernelProgram& program) {
  const std::string source = codegen::printNativeHostSource(program);
  return digestHex(
      fnv1a64(strCat(source, "|abi=", codegen::kNativeHostAbiVersion)));
}

std::string nativeObjectPath(const NativeEngineConfig& config,
                             const std::string& digest) {
  return (fs::path(resolveNativeCacheDir(config)) / (digest + ".so"))
      .string();
}

std::int64_t nativeObjectBytes(const codegen::KernelProgram& program,
                               const NativeEngineConfig& config) {
  std::error_code ec;
  const auto size =
      fs::file_size(nativeObjectPath(config, nativeObjectDigest(program)), ec);
  return ec ? 0 : static_cast<std::int64_t>(size);
}

void resetNativeEngineForTest() {
  std::lock_guard<std::mutex> lock(engineMutex());
  objectTable().clear();
}

NativeRunResult runNative(const codegen::KernelProgram& program,
                          const NativeEngineConfig& config,
                          const NativeRunInput& input) {
  if (input.params.size() != program.params.size())
    throw InputError(strCat("native run expects ", program.params.size(),
                            " params, got ", input.params.size()));
  if (input.arrays.size() != program.arrays.size())
    throw InputError(strCat("native run expects ", program.arrays.size(),
                            " arrays, got ", input.arrays.size()));
  for (double* array : input.arrays)
    if (array == nullptr) throw InputError("native run given a null array");

  NativeRunResult result;
  const LoadedObject loaded = obtainObject(program, config, result.cacheHit);
  result.soPath = loaded.path;

  trace::Span span("jit.run", {trace::arg("kernel", program.name),
                               trace::arg("so", loaded.path)});
  RawCounters raw{};
  const int rc = loaded.run(input.params.data(), input.arrays.data(),
                            input.alpha, input.beta, &raw);
  if (rc != 0)
    unavailable(strCat("sw_native_run returned ", rc, " for '", loaded.path,
                       "'"));
  result.counters.dmaMessages = raw.dmaMessages;
  result.counters.dmaBytes = raw.dmaBytes;
  result.counters.rmaBroadcastsSent = raw.rmaBroadcastsSent;
  result.counters.rmaBytesSent = raw.rmaBytesSent;
  result.counters.syncs = raw.syncs;
  result.counters.microKernelCalls = raw.microKernelCalls;
  result.counters.flops = raw.flops;
  return result;
}

}  // namespace sw::jit
